"""Runtime lock-order sanitizer: instrumented locks, order graph, cycles.

Every lock the repro runtime creates goes through
:func:`repro.concurrency.make_lock` / ``make_rlock``.  When the
sanitizer is active (``REPRO_SANITIZE=1`` in the environment, or an
explicit :func:`activate`), those factories hand out
:class:`SanitizedLock` / :class:`SanitizedRLock` wrappers instead of
plain ``threading`` primitives.  The wrappers record, per *lock class*
(the name given at the creation site, e.g. ``"ViewStore._lock"`` — all
instances of a class share one node, the lockdep convention):

* **acquisition counts**, **contention counts** (the lock was held by
  another thread when we asked) and **wait/hold time totals**;
* the **lock-order graph**: acquiring B while holding A records the
  edge A→B with one example acquisition site per edge.  Re-entrant
  re-acquisition of the *same object* records nothing (RLocks are
  allowed to nest on themselves).

A cycle in that graph — A→B somewhere, B→A somewhere else — is a
potential deadlock even if the runs that recorded the two edges never
overlapped; :meth:`LockOrderSanitizer.cycles` reports every strongly
connected component of size > 1 plus every self-loop.  When inactive
the factories return plain ``threading`` locks, so the instrumented
path costs nothing unless opted into.
"""

from __future__ import annotations

import os
import threading
import traceback
from time import perf_counter

__all__ = [
    "LockOrderSanitizer",
    "SanitizedLock",
    "SanitizedRLock",
    "activate",
    "current",
    "deactivate",
]

#: Environment switch the lock factories honour (value must be "1").
ENV_SWITCH = "REPRO_SANITIZE"


class _LockStats:
    """Mutable per-lock-class counters (guarded by the sanitizer mutex)."""

    __slots__ = (
        "name",
        "instances",
        "acquisitions",
        "contentions",
        "wait_total",
        "max_wait",
        "hold_total",
        "max_hold",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances = 0
        self.acquisitions = 0
        self.contentions = 0
        self.wait_total = 0.0
        self.max_wait = 0.0
        self.hold_total = 0.0
        self.max_hold = 0.0

    def to_dict(self) -> dict:
        return {
            "instances": self.instances,
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "wait_total_s": round(self.wait_total, 6),
            "max_wait_s": round(self.max_wait, 6),
            "hold_total_s": round(self.hold_total, 6),
            "max_hold_s": round(self.max_hold, 6),
        }


class _Held:
    """One entry on a thread's acquisition stack."""

    __slots__ = ("name", "obj_id", "acquired_at", "reentrant")

    def __init__(
        self, name: str, obj_id: int, acquired_at: float, reentrant: bool
    ) -> None:
        self.name = name
        self.obj_id = obj_id
        self.acquired_at = acquired_at
        self.reentrant = reentrant


def _acquisition_site() -> str:
    """``file:line in func`` of the frame that asked for the lock."""
    for frame in reversed(traceback.extract_stack()):
        if frame.filename != __file__:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class SanitizedLock:
    """A ``threading.Lock`` wrapper reporting to a :class:`LockOrderSanitizer`."""

    _factory = staticmethod(threading.Lock)
    _reentrant = False

    def __init__(self, sanitizer: "LockOrderSanitizer", name: str) -> None:
        self._sanitizer = sanitizer
        self.name = name
        self._inner = self._factory()
        sanitizer._register(name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        started = perf_counter()
        acquired = self._inner.acquire(False)
        contended = False
        if not acquired:
            contended = True
            if not blocking:
                self._sanitizer._on_contended(self.name)
                return False
            acquired = self._inner.acquire(True, timeout)
            if not acquired:
                self._sanitizer._on_contended(self.name)
                return False
        self._sanitizer._on_acquired(
            self, perf_counter() - started, contended
        )
        return True

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SanitizedRLock(SanitizedLock):
    """Re-entrant variant; nesting on the *same object* records no edge."""

    _factory = staticmethod(threading.RLock)
    _reentrant = True

    def locked(self) -> bool:  # RLock has no .locked() before 3.12
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


class LockOrderSanitizer:
    """Collector of lock statistics and the global lock-order graph."""

    def __init__(self) -> None:
        # A plain lock on purpose: the sanitizer must never report on
        # (or recurse into) its own synchronization.
        self._mutex = threading.Lock()
        self._stats: dict[str, _LockStats] = {}
        #: held-before name -> {acquired-while-held name -> example site}.
        self._edges: dict[str, dict[str, str]] = {}
        self._local = threading.local()

    # -- lock construction ----------------------------------------------------

    def lock(self, name: str) -> SanitizedLock:
        return SanitizedLock(self, name)

    def rlock(self, name: str) -> SanitizedRLock:
        return SanitizedRLock(self, name)

    # -- wrapper callbacks ----------------------------------------------------

    def _stack(self) -> list[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _register(self, name: str) -> None:
        with self._mutex:
            self._stats.setdefault(name, _LockStats(name)).instances += 1

    def _on_contended(self, name: str) -> None:
        """A non-blocking or timed acquire that never got the lock."""
        with self._mutex:
            self._stats[name].contentions += 1

    def _on_acquired(
        self, lock: SanitizedLock, waited: float, contended: bool
    ) -> None:
        stack = self._stack()
        reentrant = lock._reentrant and any(
            held.obj_id == id(lock) for held in stack
        )
        new_edges: list[tuple[str, str]] = []
        if not reentrant:
            for held in stack:
                if held.obj_id != id(lock):
                    new_edges.append((held.name, lock.name))
        with self._mutex:
            stats = self._stats[lock.name]
            stats.acquisitions += 1
            stats.wait_total += waited
            stats.max_wait = max(stats.max_wait, waited)
            if contended:
                stats.contentions += 1
            for source, target in new_edges:
                targets = self._edges.setdefault(source, {})
                if target not in targets:
                    targets[target] = _acquisition_site()
        stack.append(_Held(lock.name, id(lock), perf_counter(), reentrant))

    def _on_release(self, lock: SanitizedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].obj_id == id(lock):
                held = stack.pop(index)
                duration = perf_counter() - held.acquired_at
                with self._mutex:
                    stats = self._stats[lock.name]
                    stats.hold_total += duration
                    stats.max_hold = max(stats.max_hold, duration)
                return
        # Released a lock this thread never acquired through the wrapper;
        # threading will raise on the inner release, nothing to record.

    # -- reporting ------------------------------------------------------------

    def edges(self) -> dict[str, dict[str, str]]:
        """``held -> {acquired: example site}`` (a deep copy)."""
        with self._mutex:
            return {
                source: dict(targets)
                for source, targets in self._edges.items()
            }

    def cycles(self) -> list[list[str]]:
        """Lock-order cycles: SCCs of size > 1 and self-loops, sorted.

        Each cycle is reported as the sorted list of its member lock
        names (a canonical form, stable across runs and edge insertion
        order), so baselines can compare cycles structurally.
        """
        edges = self.edges()
        nodes = set(edges)
        for targets in edges.values():
            nodes.update(targets)
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        out: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan (the graph is tiny, but recursion limits
            # are not a property we want to depend on in a sanitizer).
            work = [(node, iter(sorted(edges.get(node, ()))))]
            index_of[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current_node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index_of:
                        index_of[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(edges.get(successor, ()))))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current_node] = min(
                            lowlink[current_node], index_of[successor]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(
                        lowlink[parent], lowlink[current_node]
                    )
                if lowlink[current_node] == index_of[current_node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current_node:
                            break
                    if len(component) > 1:
                        out.append(sorted(component))

        for node in sorted(nodes):
            if node not in index_of:
                strongconnect(node)
        for node in sorted(nodes):
            if node in edges.get(node, {}):
                out.append([node])
        return sorted(out)

    def stats(self) -> dict:
        """Counters + graph summary (the health endpoint's ``locks``)."""
        with self._mutex:
            locks = {
                name: stats.to_dict()
                for name, stats in sorted(self._stats.items())
            }
            edge_count = sum(len(t) for t in self._edges.values())
        return {
            "enabled": True,
            "locks": locks,
            "order_edges": edge_count,
            "cycles": self.cycles(),
        }

    def graph(self) -> dict:
        """The full order graph, artifact-shaped (CI uploads this)."""
        return {
            "locks": {
                name: stats.to_dict()
                for name, stats in sorted(self._stats.items())
            },
            "edges": [
                {"held": source, "acquired": target, "site": site}
                for source, targets in sorted(self.edges().items())
                for target, site in sorted(targets.items())
            ],
            "cycles": self.cycles(),
        }


# -- process-global activation ------------------------------------------------

_active: LockOrderSanitizer | None = None


def current() -> LockOrderSanitizer | None:
    """The active sanitizer, activating from the environment on demand."""
    global _active
    if _active is None and os.environ.get(ENV_SWITCH) == "1":
        _active = LockOrderSanitizer()
    return _active


def activate() -> LockOrderSanitizer:
    """Install (and return) a fresh process-global sanitizer."""
    global _active
    _active = LockOrderSanitizer()
    return _active


def deactivate(previous: LockOrderSanitizer | None = None) -> None:
    """Drop the active sanitizer (optionally restoring ``previous``).

    Locks created while it was active keep reporting to the instance
    that built them; only *new* locks revert to plain primitives.
    """
    global _active
    _active = previous
