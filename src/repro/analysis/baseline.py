"""The grandfathering baseline: visible-but-accepted pre-existing findings.

A baseline is a committed JSON file listing fingerprinted violations
that predate the lint suite.  ``repro lint`` subtracts it, so new code
is held to the rules while old, deliberate fast paths stay visible (the
file is in the repo, reviewable, and shrinks as findings are fixed) but
non-fatal.  ``--check-baseline`` additionally fails on *stale* entries —
a fixed violation must leave the baseline with it.

Fingerprints are line-number independent: ``sha1(rule | path |
enclosing scope qualname | stripped source line)`` plus an occurrence
index for identical lines in one scope.  Inserting code above a
grandfathered line does not un-grandfather it; editing the flagged line
itself does (by design — a touched line must meet the rules).
"""

from __future__ import annotations

import json
from hashlib import sha1
from pathlib import Path

from repro.analysis.core import Violation

__all__ = ["Baseline", "fingerprint_all"]

_FORMAT_VERSION = 1


def _raw_fingerprint(violation: Violation, occurrence: int) -> str:
    digest = sha1(
        "|".join(
            (
                violation.rule,
                violation.path.replace("\\", "/"),
                violation.scope,
                violation.snippet,
                str(occurrence),
            )
        ).encode()
    )
    return digest.hexdigest()[:16]


def fingerprint_all(violations: list[Violation]) -> list[tuple[str, Violation]]:
    """Stable ``(fingerprint, violation)`` pairs, occurrence-indexed."""
    counts: dict[tuple[str, str, str, str], int] = {}
    out: list[tuple[str, Violation]] = []
    for violation in sorted(
        violations, key=lambda v: (v.path, v.line, v.rule)
    ):
        identity = (
            violation.rule,
            violation.path,
            violation.scope,
            violation.snippet,
        )
        occurrence = counts.get(identity, 0)
        counts[identity] = occurrence + 1
        out.append((_raw_fingerprint(violation, occurrence), violation))
    return out


class Baseline:
    """A set of grandfathered fingerprints with human-readable context."""

    def __init__(self, entries: dict[str, dict] | None = None) -> None:
        #: fingerprint -> {rule, path, line, scope, snippet, message}.
        self.entries: dict[str, dict] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {_FORMAT_VERSION})"
            )
        return cls(data.get("violations", {}))

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        entries = {
            fingerprint: {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "scope": violation.scope,
                "snippet": violation.snippet,
                "message": violation.message,
            }
            for fingerprint, violation in fingerprint_all(violations)
        }
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered lint findings (repro lint --write-baseline). "
                "New violations fail; fixing one must remove its entry "
                "(repro lint --check-baseline enforces both directions)."
            ),
            "violations": {
                fingerprint: self.entries[fingerprint]
                for fingerprint in sorted(self.entries)
            },
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    def split(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[Violation], list[dict]]:
        """Partition a run against the baseline.

        Returns ``(new, grandfathered, stale)`` where ``stale`` entries
        are baseline records whose violation no longer occurs.
        """
        matched: set[str] = set()
        new: list[Violation] = []
        grandfathered: list[Violation] = []
        for fingerprint, violation in fingerprint_all(violations):
            if fingerprint in self.entries:
                matched.add(fingerprint)
                grandfathered.append(violation)
            else:
                new.append(violation)
        stale = [
            dict(entry, fingerprint=fingerprint)
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in matched
        ]
        return new, grandfathered, stale

    def __len__(self) -> int:
        return len(self.entries)
