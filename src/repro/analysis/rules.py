"""The repo-specific lint rules.

Five rules, each encoding one invariant of the cache/concurrency
design (see README "Concurrency invariants"):

``gen-key``
    Every insertion into a cache-like attribute (a ``ThreadSafeLRU`` or
    a ``*memo*``/``*cache*`` dict) must key — or, for memo dicts whose
    values carry the stamp, value — on a generation component
    (``star.generation``, ``selection.generation``, a journal
    generation...).  A generation-less key can serve stale data forever.

``lock-guard``
    Attributes declared ``# guarded-by: <lock>`` may only be touched
    inside ``with self.<lock>:`` (or in helpers annotated
    ``# guarded-by-caller: <lock>``).

``frozen-payload``
    Values constructed from frozen payload classes (``NamedTuple``,
    ``@dataclass(frozen=True)``, or ``# frozen-payload``-marked) must
    not be mutated after construction — no ``.append`` /
    item-assignment / attribute rebinding on them or their fields.
    Cached payloads are shared by every later hit; one in-place edit
    poisons every subsequent response.

``check-then-act``
    In a class that owns a lock, a membership test / ``.get`` read of a
    shared dict attribute combined with an unguarded store to the same
    attribute in the same method is a data race: two threads can both
    miss and both write.  Double-checked builds whose *store* sits under
    the lock pass.

``swallowed-error``
    No bare ``except:`` anywhere; no broad handler (``Exception``,
    ``StorageError``, ``ReproError``) whose body is only ``pass`` on
    request paths — degraded answers must be deliberate, not silent.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterable, Iterator

from repro.analysis.core import ModuleSource, ProjectIndex, Violation
from repro.analysis.guards import ClassInfo, collect_classes

__all__ = [
    "ALL_RULES",
    "CheckThenActRule",
    "FrozenPayloadRule",
    "GenKeyRule",
    "LockGuardRule",
    "SwallowedErrorRule",
]

_GENERATION_RE = re.compile(r"generation", re.IGNORECASE)

_CONSTRUCTORS = ("__init__", "__post_init__")


def _is_self_attr(node: ast.AST, attrs: Iterable[str] | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attrs is None or node.attr in set(attrs))
    )


def _methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _with_lock_names(stmt: ast.With | ast.AsyncWith) -> set[str]:
    """Lock names a ``with`` statement acquires (``self.X`` / ``X`` / ``r.X``)."""
    names: set[str] = set()
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute):
            names.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


def _walk_guarded(
    root: ast.AST,
    held: frozenset[str],
    module: ModuleSource,
    visit: Callable[[ast.AST, frozenset[str]], None],
) -> None:
    """Walk a function body, tracking which locks are lexically held.

    Nested ``def``/``lambda`` bodies run later, possibly without the
    locks held at their definition site, so they restart from their own
    ``# guarded-by-caller:`` annotation (or nothing).
    """
    visit(root, held)
    if isinstance(root, (ast.With, ast.AsyncWith)):
        for item in root.items:
            _walk_guarded(item, held, module, visit)
        inner = held | _with_lock_names(root)
        for stmt in root.body:
            _walk_guarded(stmt, inner, module, visit)
        return
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            caller_guard = module.statement_annotation(
                child, module.caller_guard_lines
            )
            child_held = (
                frozenset({caller_guard}) if caller_guard else frozenset()
            )
            _walk_guarded(child, child_held, module, visit)
        elif isinstance(child, ast.Lambda):
            _walk_guarded(child, frozenset(), module, visit)
        else:
            _walk_guarded(child, held, module, visit)


def _function_walk(
    method: ast.FunctionDef, module: ModuleSource
) -> list[tuple[ast.AST, frozenset[str]]]:
    caller_guard = module.statement_annotation(
        method, module.caller_guard_lines
    )
    held0 = frozenset({caller_guard}) if caller_guard else frozenset()
    out: list[tuple[ast.AST, frozenset[str]]] = []
    for stmt in method.body:
        _walk_guarded(
            stmt, held0, module, lambda node, held: out.append((node, held))
        )
    return out


class LockGuardRule:
    """Guarded attributes are only touched under their declared lock."""

    id = "lock-guard"
    description = (
        "access to a `# guarded-by:` attribute outside `with self.<lock>`"
    )

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterator[Violation]:
        for info in collect_classes(module):
            if not info.guarded:
                continue
            for method in _methods(info.node):
                if method.name in _CONSTRUCTORS:
                    continue
                yield from self._check_method(module, info, method)

    def _check_method(
        self, module: ModuleSource, info: ClassInfo, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        findings: list[Violation] = []

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if _is_self_attr(node, info.guarded):
                required = info.guarded[node.attr]  # type: ignore[union-attr]
                if required not in held:
                    findings.append(
                        module.violation(
                            self.id,
                            node,
                            f"self.{node.attr} accessed outside "  # type: ignore[union-attr]
                            f"`with self.{required}` (declared "
                            f"# guarded-by: {required})",
                        )
                    )

        for node, held in _function_walk(method, module):
            visit(node, held)
        yield from findings


class GenKeyRule:
    """Cache insertions must carry a generation component."""

    id = "gen-key"
    description = (
        "cache/memo insertion whose key (and value) carries no "
        "generation component"
    )

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterator[Violation]:
        for info in collect_classes(module):
            if not info.caches:
                continue
            for method in _methods(info.node):
                if method.name in _CONSTRUCTORS:
                    continue
                yield from self._check_method(module, info, method)

    def _check_method(
        self, module: ModuleSource, info: ClassInfo, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        assignments = self._local_assignments(method)
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("put", "setdefault")
                    and _is_self_attr(func.value, info.caches)
                    and node.args
                ):
                    key_ok = self._has_generation(node.args[0], assignments)
                    # Stamped-value idiom (mirrors the subscript-store
                    # branch below): the key is a plain identity and the
                    # stored value carries the generation stamps that are
                    # revalidated on read — that protocol also passes.
                    value_ok = len(node.args) > 1 and self._has_generation(
                        node.args[1], assignments
                    )
                    if not key_ok and not value_ok:
                        yield module.violation(
                            self.id,
                            node,
                            f"insertion into self.{func.value.attr} whose "  # type: ignore[union-attr]
                            "key and value carry no generation component "
                            "(star/selection/journal generation)",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _is_self_attr(
                        target.value, info.caches
                    ):
                        key_ok = self._has_generation(
                            target.slice, assignments
                        )
                        # Memo-dict idiom: the key is a plain identity and
                        # the *stored value* carries the generation stamp
                        # compared on read — that protocol also passes.
                        value_ok = self._has_generation(
                            node.value, assignments
                        )
                        if not key_ok and not value_ok:
                            yield module.violation(
                                self.id,
                                node,
                                f"store into self.{target.value.attr} "  # type: ignore[union-attr]
                                "whose key and value carry no generation "
                                "component",
                            )

    @staticmethod
    def _local_assignments(
        method: ast.FunctionDef,
    ) -> dict[str, list[ast.expr]]:
        out: dict[str, list[ast.expr]] = {}
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    out.setdefault(node.target.id, []).append(node.value)
        return out

    def _has_generation(
        self,
        expr: ast.expr,
        assignments: dict[str, list[ast.expr]],
        depth: int = 0,
    ) -> bool:
        if depth > 4:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and _GENERATION_RE.search(
                node.attr
            ):
                return True
            if isinstance(node, ast.Name):
                if _GENERATION_RE.search(node.id):
                    return True
                for candidate in assignments.get(node.id, ()):
                    if candidate is not expr and self._has_generation(
                        candidate, assignments, depth + 1
                    ):
                        return True
        return False


class FrozenPayloadRule:
    """No mutation of frozen payload objects after construction."""

    id = "frozen-payload"
    description = "mutation of a frozen DTO/cached payload after construction"

    _MUTATORS = {
        "append",
        "extend",
        "insert",
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "remove",
        "discard",
        "add",
        "sort",
        "reverse",
    }

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, index, node)

    def _frozen_locals(
        self, index: ProjectIndex, func: ast.FunctionDef
    ) -> dict[str, str]:
        out: dict[str, str] = {}
        # Parameters annotated with a frozen class are frozen too — this
        # is how mutation-log consumers receive StarMutation payloads.
        arguments = func.args
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            name = self._annotation_name(arg.annotation)
            if name in index.frozen_classes:
                out[arg.arg] = name
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                callee = node.value.func
                name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else getattr(callee, "id", None)
                )
                if name in index.frozen_classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            out[target.id] = name
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = self._annotation_name(node.annotation)
                if name in index.frozen_classes:
                    out[node.target.id] = name
        return out

    @staticmethod
    def _annotation_name(annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return annotation.value.rsplit(".", 1)[-1]
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Attribute):
            return annotation.attr
        return None

    def _frozen_base(
        self,
        node: ast.expr,
        frozen_locals: dict[str, str],
        index: ProjectIndex,
    ) -> str | None:
        """If ``node`` is ``<frozen value>.attr`` (or deeper), its class."""
        base = node
        while isinstance(base, ast.Attribute):
            inner = base.value
            if isinstance(inner, ast.Name) and inner.id in frozen_locals:
                return frozen_locals[inner.id]
            if isinstance(inner, ast.Call):
                callee = inner.func
                name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else getattr(callee, "id", None)
                )
                if name in index.frozen_classes:
                    return name
            base = inner
        return None

    def _check_function(
        self,
        module: ModuleSource,
        index: ProjectIndex,
        func: ast.FunctionDef,
    ) -> Iterator[Violation]:
        frozen_locals = self._frozen_locals(index, func)
        if not frozen_locals and not index.frozen_classes:
            return
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in self._MUTATORS
                ):
                    owner = self._frozen_base(
                        callee.value, frozen_locals, index
                    )
                    if owner is not None:
                        yield module.violation(
                            self.id,
                            node,
                            f".{callee.attr}() on a field of frozen "
                            f"payload {owner} (cached payloads are shared; "
                            "build a new object instead)",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    base: ast.expr | None = None
                    if isinstance(target, ast.Subscript):
                        base = target.value
                    elif isinstance(target, ast.Attribute):
                        base = target
                    if base is None:
                        continue
                    owner = self._frozen_base(base, frozen_locals, index)
                    if owner is not None:
                        yield module.violation(
                            self.id,
                            node,
                            f"assignment into frozen payload {owner} after "
                            "construction (cached payloads are shared; "
                            "build a new object instead)",
                        )


class CheckThenActRule:
    """No unguarded test+store races on shared dict attributes."""

    id = "check-then-act"
    description = (
        "membership/get check and store on a shared dict without a lock"
    )

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterator[Violation]:
        for info in collect_classes(module):
            # Only classes that own a lock have declared themselves
            # shared; single-threaded helpers stay out of scope.
            if not info.locks:
                continue
            for method in _methods(info.node):
                if method.name in _CONSTRUCTORS:
                    continue
                yield from self._check_method(module, info, method)

    def _check_method(
        self, module: ModuleSource, info: ClassInfo, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        checked: set[str] = set()
        stores: list[tuple[str, ast.AST]] = []

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            guarded = bool(held & info.locks)
            if isinstance(node, ast.Compare) and not guarded:
                if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                    for operand in node.comparators:
                        if _is_self_attr(operand):
                            checked.add(operand.attr)  # type: ignore[union-attr]
            if isinstance(node, ast.Call) and not guarded:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and _is_self_attr(func.value)
                ):
                    checked.add(func.value.attr)  # type: ignore[union-attr]
            if isinstance(node, ast.Assign) and not guarded:
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _is_self_attr(
                        target.value
                    ):
                        stores.append((target.value.attr, node))  # type: ignore[union-attr]
            if isinstance(node, ast.Delete) and not guarded:
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _is_self_attr(
                        target.value
                    ):
                        stores.append((target.value.attr, node))  # type: ignore[union-attr]

        for node, held in _function_walk(method, module):
            visit(node, held)
        for attr, node in stores:
            if attr in checked:
                yield module.violation(
                    self.id,
                    node,
                    f"check-then-act on self.{attr}: tested and stored "
                    "without holding a lock (two threads can both miss "
                    "and both write)",
                )


class SwallowedErrorRule:
    """No bare excepts; no silently-swallowed broad exceptions."""

    id = "swallowed-error"
    description = "bare `except:` or broad exception handler that only passes"

    _BROAD = {"Exception", "BaseException", "StorageError", "ReproError"}

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.violation(
                    self.id,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "too; name the exception",
                )
                continue
            names = self._exception_names(node.type)
            if names & self._BROAD and self._only_passes(node.body):
                caught = ", ".join(sorted(names & self._BROAD))
                yield module.violation(
                    self.id,
                    node,
                    f"swallowed {caught}: handler body is only `pass` — "
                    "a degraded answer must be deliberate (log, count, "
                    "or re-raise)",
                )

    @staticmethod
    def _exception_names(node: ast.expr) -> set[str]:
        names: set[str] = set()
        candidates = node.elts if isinstance(node, ast.Tuple) else [node]
        for candidate in candidates:
            if isinstance(candidate, ast.Attribute):
                names.add(candidate.attr)
            elif isinstance(candidate, ast.Name):
                names.add(candidate.id)
        return names

    @staticmethod
    def _only_passes(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            if isinstance(stmt, ast.Continue):
                continue
            return False
        return True


ALL_RULES = (
    GenKeyRule(),
    LockGuardRule(),
    FrozenPayloadRule(),
    CheckThenActRule(),
    SwallowedErrorRule(),
)
