"""Per-class attribute metadata: guards, locks, and cache-like attrs.

One pass over a module's classes yields, per class:

* **guarded attributes** — declared with ``# guarded-by: <lock>`` on the
  attribute's declaration (``self._x = ...`` in ``__init__`` /
  ``__post_init__``, or a class-body field), consumed by the
  ``lock-guard`` rule;
* **lock attributes** — attributes holding a lock (``threading.Lock()``,
  ``RLock()``, :func:`repro.concurrency.make_lock` / ``make_rlock``, or
  dataclass fields whose factory mentions one of those), consumed by
  ``check-then-act`` to decide a class has shared state worth guarding;
* **cache-like attributes** — :class:`repro.lru.ThreadSafeLRU` instances
  and dict-shaped attributes whose name contains ``memo``, ``cache`` or
  ``translation`` (the star's roll-up translation tables), consumed by
  ``gen-key`` to find insertions whose keys must carry a generation
  component.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.core import ModuleSource

__all__ = ["ClassInfo", "collect_classes"]

_CACHE_NAME_RE = re.compile(
    r"(memo|cache|translation|checkpoint|history)", re.IGNORECASE
)
_LOCK_FACTORY_NAMES = {"Lock", "RLock", "make_lock", "make_rlock"}
_DICTISH_CALL_NAMES = {"dict", "OrderedDict", "defaultdict", "WeakValueDictionary"}


@dataclass
class ClassInfo:
    """Lint-relevant attribute metadata of one class."""

    name: str
    qualname: str
    node: ast.ClassDef
    #: attr name -> lock name it must be accessed under.
    guarded: dict[str, str] = field(default_factory=dict)
    #: attrs that hold locks.
    locks: set[str] = field(default_factory=set)
    #: attrs that are generation-keyed caches (LRU maps / memo dicts).
    caches: set[str] = field(default_factory=set)


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_lock_value(value: ast.expr) -> bool:
    """Does this default/assigned expression construct a lock?"""
    if isinstance(value, ast.Call):
        name = _call_name(value)
        if name in _LOCK_FACTORY_NAMES:
            return True
        # Dataclass fields: field(default_factory=threading.Lock) or
        # field(default_factory=partial(make_lock, "...")).
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    return _is_lock_value(keyword.value) or (
                        isinstance(keyword.value, ast.Attribute)
                        and keyword.value.attr in _LOCK_FACTORY_NAMES
                    ) or (
                        isinstance(keyword.value, ast.Name)
                        and keyword.value.id in _LOCK_FACTORY_NAMES
                    )
        if name == "partial" and value.args:
            first = value.args[0]
            inner = (
                first.attr
                if isinstance(first, ast.Attribute)
                else getattr(first, "id", None)
            )
            return inner in _LOCK_FACTORY_NAMES
    return False


def _is_dictish_value(value: ast.expr) -> bool:
    """Does this expression construct a plain mapping (memo-dict shape)?"""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = _call_name(value)
        if name in _DICTISH_CALL_NAMES:
            return True
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    inner = keyword.value
                    inner_name = (
                        inner.attr
                        if isinstance(inner, ast.Attribute)
                        else getattr(inner, "id", None)
                    )
                    return inner_name in _DICTISH_CALL_NAMES
    return False


def _is_lru_value(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and _call_name(value) == "ThreadSafeLRU"


def _declarations(node: ast.ClassDef):
    """(attr name, statement, value expr) for every attribute declaration.

    Covers class-body fields (``x: T = ...`` / ``x = ...``) and
    ``self.x = ...`` assignments in ``__init__`` / ``__post_init__``.
    """
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id, stmt, value
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name in (
            "__init__",
            "__post_init__",
        ):
            for inner in ast.walk(stmt):
                inner_targets: list[ast.expr] = []
                inner_value: ast.expr | None = None
                if isinstance(inner, ast.AnnAssign):
                    inner_targets, inner_value = [inner.target], inner.value
                elif isinstance(inner, ast.Assign):
                    inner_targets, inner_value = inner.targets, inner.value
                for target in inner_targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        yield target.attr, inner, inner_value


def collect_classes(module: ModuleSource) -> list[ClassInfo]:
    """Every class in the module with its guard/lock/cache attr metadata."""
    out: list[ClassInfo] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = (
                    f"{prefix}.{child.name}" if prefix else child.name
                )
                info = ClassInfo(name=child.name, qualname=qualname, node=child)
                for attr, stmt, value in _declarations(child):
                    lock_name = module.statement_annotation(
                        stmt, module.guard_lines
                    )
                    if lock_name is not None:
                        info.guarded[attr] = lock_name
                    if value is None:
                        continue
                    if _is_lock_value(value):
                        info.locks.add(attr)
                    elif _is_lru_value(value) or (
                        _CACHE_NAME_RE.search(attr)
                        and _is_dictish_value(value)
                    ):
                        info.caches.add(attr)
                out.append(info)
                walk(child, qualname)
            else:
                walk(child, prefix)

    walk(module.tree, "")
    return out
