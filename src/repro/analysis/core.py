"""The lint framework: sources, scopes, suppressions, the runner.

Stdlib-``ast`` only — no third-party lint engine.  A
:class:`ModuleSource` is one parsed file plus the comment-carried
metadata the rules consume (``# guarded-by:`` declarations,
``# guarded-by-caller:`` function annotations, ``# lint-ok:``
suppressions); a :class:`ProjectIndex` carries the little cross-file
knowledge the rules need (which classes are frozen payload types); a
:class:`LintRunner` applies every rule to every module and filters
suppressed findings.

Annotation grammar (all are ordinary comments):

``# guarded-by: <lock>``
    On (or in the comment block directly above) an attribute
    declaration — ``self._entries = ...`` in ``__init__`` or a
    class-body field — declaring that the attribute may only be
    touched inside ``with self.<lock>:``.

``# guarded-by-caller: <lock>``
    On a ``def`` line: every caller of this helper already holds
    ``<lock>``, so its body is treated as guarded.

``# lint-ok: <rule>[, <rule>...] [- reason]``
    Suppresses the named rules on that line (``*`` suppresses all).
    Use for deliberate, documented exceptions; prefer the committed
    baseline for grandfathered pre-existing findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Protocol

__all__ = ["LintRunner", "ModuleSource", "ProjectIndex", "Rule", "Violation"]

_SUPPRESS_RE = re.compile(r"#.*?\blint-ok:\s*([\w\-*]+(?:\s*,\s*[\w\-*]+)*)")
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_CALLER_GUARD_RE = re.compile(r"#\s*guarded-by-caller:\s*([A-Za-z_]\w*)")
_FROZEN_MARK_RE = re.compile(r"#\s*frozen-payload\b")


@dataclass(frozen=True)
class Violation:
    """One finding: rule, location, and enough context to fingerprint it."""

    rule: str
    path: str
    line: int
    message: str
    scope: str
    snippet: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class ModuleSource:
    """One parsed source file plus its comment-carried lint metadata."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: line number -> rule ids suppressed on that line.
        self.suppressions: dict[int, set[str]] = {}
        #: line number -> declared guard lock name.
        self.guard_lines: dict[int, str] = {}
        #: line number -> caller-held lock name (function annotations).
        self.caller_guard_lines: dict[int, str] = {}
        for number, line in enumerate(self.lines, start=1):
            if (match := _SUPPRESS_RE.search(line)) is not None:
                rules = {r.strip() for r in match.group(1).split(",")}
                self.suppressions[number] = rules
            if (match := _GUARD_RE.search(line)) is not None:
                self.guard_lines[number] = match.group(1)
            if (match := _CALLER_GUARD_RE.search(line)) is not None:
                self.caller_guard_lines[number] = match.group(1)
        self._scopes = self._collect_scopes()

    @classmethod
    def load(cls, path: Path, display_path: str | None = None) -> "ModuleSource":
        return cls(display_path or str(path), path.read_text())

    # -- scopes ---------------------------------------------------------------

    def _collect_scopes(self) -> list[tuple[int, int, str]]:
        spans: list[tuple[int, int, str]] = []

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    qualname = f"{prefix}.{child.name}" if prefix else child.name
                    spans.append(
                        (child.lineno, child.end_lineno or child.lineno, qualname)
                    )
                    walk(child, qualname)
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        return spans

    def scope_at(self, line: int) -> str:
        """Dotted qualname of the innermost class/function holding a line."""
        best = "<module>"
        best_size = None
        for start, end, qualname in self._scopes:
            if start <= line <= end:
                size = end - start
                if best_size is None or size <= best_size:
                    best, best_size = qualname, size
        return best

    # -- annotations ----------------------------------------------------------

    def statement_annotation(
        self, stmt: ast.stmt, table: dict[int, str]
    ) -> str | None:
        """An annotation on the statement's lines or its leading comments."""
        end = stmt.end_lineno or stmt.lineno
        for number in range(stmt.lineno, end + 1):
            if number in table:
                return table[number]
        number = stmt.lineno - 1
        while number >= 1 and self.lines[number - 1].lstrip().startswith("#"):
            if number in table:
                return table[number]
            number -= 1
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and bool(rules & {rule, "*"})

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        snippet = (
            self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        )
        return Violation(
            rule=rule,
            path=self.path,
            line=line,
            message=message,
            scope=self.scope_at(line),
            snippet=snippet,
        )


class ProjectIndex:
    """Cross-file facts shared by the rules (one lint run's worth)."""

    def __init__(self, modules: Iterable[ModuleSource]) -> None:
        #: Class names whose instances are immutable payloads: NamedTuple
        #: subclasses, ``@dataclass(frozen=True)``, or ``# frozen-payload``.
        self.frozen_classes: set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and self._is_frozen(
                    module, node
                ):
                    self.frozen_classes.add(node.name)

    @staticmethod
    def _is_frozen(module: ModuleSource, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(
                base, "id", None
            )
            if name == "NamedTuple":
                return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = (
                    decorator.func.attr
                    if isinstance(decorator.func, ast.Attribute)
                    else getattr(decorator.func, "id", None)
                )
                if name == "dataclass" and any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                ):
                    return True
        end = node.body[0].lineno if node.body else node.lineno
        for number in range(node.lineno, end + 1):
            if 0 < number <= len(module.lines) and _FROZEN_MARK_RE.search(
                module.lines[number - 1]
            ):
                return True
        return False


class Rule(Protocol):
    """One lint rule: an id, a description, and a per-module check."""

    id: str
    description: str

    def check(
        self, module: ModuleSource, index: ProjectIndex
    ) -> Iterable[Violation]: ...


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class LintRunner:
    """Apply a rule set to a file tree, honouring inline suppressions."""

    def __init__(self, rules: Iterable[Rule] | None = None) -> None:
        if rules is None:
            from repro.analysis.rules import ALL_RULES

            rules = ALL_RULES
        self.rules = list(rules)

    def run(self, paths: Iterable[str | Path]) -> list[Violation]:
        modules: list[ModuleSource] = []
        for path in iter_python_files(paths):
            modules.append(ModuleSource.load(path, str(path)))
        return self.run_modules(modules)

    def run_modules(self, modules: list[ModuleSource]) -> list[Violation]:
        index = ProjectIndex(modules)
        violations: list[Violation] = []
        for module in modules:
            for rule in self.rules:
                for violation in rule.check(module, index):
                    if not module.is_suppressed(rule.id, violation.line):
                        violations.append(violation)
        violations.sort(key=lambda v: (v.path, v.line, v.rule))
        return violations
