"""Lock construction for repro's shared state.

Every lock guarding cross-request state is created through these
factories with a stable *lock-class* name (``"ViewStore._lock"``,
``"FactTable._lock"``, ...).  In normal operation they return plain
``threading`` primitives — zero overhead, nothing recorded.  When the
lock-order sanitizer is active (``REPRO_SANITIZE=1``, or
:func:`repro.analysis.sanitizer.activate`), they return instrumented
wrappers that feed the acquisition/contention counters and the global
lock-order graph (see :mod:`repro.analysis.sanitizer`).

The name is the node identity in that graph: all instances of one lock
class share a node, so an order inversion between any two instances
anywhere in the process shows up as a cycle.
"""

from __future__ import annotations

import threading

from repro.analysis import sanitizer as _sanitizer

__all__ = ["make_lock", "make_rlock"]


def make_lock(name: str):
    """A ``threading.Lock`` (or its sanitized wrapper) named ``name``."""
    active = _sanitizer.current()
    if active is not None:
        return active.lock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A ``threading.RLock`` (or its sanitized wrapper) named ``name``."""
    active = _sanitizer.current()
    if active is not None:
        return active.rlock(name)
    return threading.RLock()
