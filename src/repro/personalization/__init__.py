"""Spatial personalization engine (the Fig. 1 process).

Rule repository with automatic schema/instance/acquisition phasing,
session lifecycle (SessionStart → selections → SessionEnd), structural
SpatialSelection event matching and personalized views for downstream
BI tools.
"""

from repro.personalization.engine import (
    PersonalizationEngine,
    PersonalizedSession,
    PersonalizedView,
    RegisteredRule,
    RulePhase,
    classify_rule,
)
from repro.personalization.view_store import ViewStore

__all__ = [
    "PersonalizationEngine",
    "PersonalizedSession",
    "PersonalizedView",
    "RegisteredRule",
    "RulePhase",
    "ViewStore",
    "classify_rule",
]
