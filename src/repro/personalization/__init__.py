"""Spatial personalization engine (the Fig. 1 process).

Rule repository with automatic schema/instance/acquisition phasing,
session lifecycle (SessionStart → selections → SessionEnd), structural
SpatialSelection event matching and personalized views for downstream
BI tools.
"""

from repro.personalization.engine import (
    PersonalizationEngine,
    PersonalizedSession,
    PersonalizedView,
    RegisteredRule,
    RulePhase,
    classify_rule,
)

__all__ = [
    "PersonalizationEngine",
    "PersonalizedSession",
    "PersonalizedView",
    "RegisteredRule",
    "RulePhase",
    "classify_rule",
]
