"""The spatial personalization engine — the process of Fig. 1.

The engine owns the rule repository and drives the two-stage process the
paper describes: "the designer starts building a MD model and defines some
Spatial Schema Rules in order to add the required spatiality in the MD
structures.  Finally the Geographic Multidimensional Model (GeoMD)
obtained is personalized using Spatial Instance Rules."

Rule classification (automatic, overridable at registration):

* **schema rules** — mutate the schema only (``AddLayer`` /
  ``BecomeSpatial``, no ``SelectInstance``): run first on SessionStart;
* **instance rules** — contain ``SelectInstance``: run after every schema
  rule, against the already-spatialized GeoMD;
* **acquisition rules** — triggered by ``SpatialSelection`` events (the
  user-interest tracking of Example 5.3): run when the front-end reports
  a matching selection.

A :class:`PersonalizedSession` wraps one analysis session of one decision
maker; ending the session fires SessionEnd rules and releases the user's
location context.
"""

from __future__ import annotations

import enum
import threading
from functools import partial
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.concurrency import make_lock
from repro.errors import PersonalizationError, PRMLRuntimeError
from repro.geometry import Metric, PlanarMetric, Point
from repro.geomd.schema import GeoMDSchema
from repro.olap.cube import Cube
from repro.prml.ast import (
    AddLayerAction,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SpatialSelectionEvent,
)
from repro.prml.evaluator import (
    Evaluator,
    GeoDataSource,
    RuleOutcome,
    RuntimeContext,
    SelectionSet,
)
from repro.prml.parser import parse_expression, parse_path, parse_rule
from repro.prml.printer import print_expr
from repro.prml.semantics import SemanticAnalyzer
from repro.personalization.view_store import ViewStore
from repro.storage.star import StarMutation, StarSchema
from repro.sus.model import UserModelSchema, UserProfile

__all__ = [
    "RulePhase",
    "RegisteredRule",
    "PersonalizedView",
    "PersonalizedSession",
    "PersonalizationEngine",
    "ViewStore",
]


class RulePhase(enum.Enum):
    SCHEMA = "schema"
    INSTANCE = "instance"
    ACQUISITION = "acquisition"


@dataclass
class RegisteredRule:
    """One rule in the repository.

    For acquisition rules the canonical prints of the declared
    ``SpatialSelection(target, condition)`` pattern are computed once at
    registration (``event_target`` / ``event_condition``), so matching a
    reported selection is two string compares per rule instead of a
    re-print of every rule's AST on every report.
    """

    rule: Rule
    source: str
    phase: RulePhase
    enabled: bool = True
    event_target: str | None = None
    event_condition: str | None = None

    def __post_init__(self) -> None:
        event = self.rule.event
        if isinstance(event, SpatialSelectionEvent):
            if self.event_target is None:
                self.event_target = str(event.target)
            if self.event_condition is None:
                self.event_condition = print_expr(event.condition)


def classify_rule(rule: Rule) -> RulePhase:
    """Default phase assignment (see module docstring)."""
    if isinstance(rule.event, SpatialSelectionEvent):
        return RulePhase.ACQUISITION
    if any(isinstance(a, SelectInstanceAction) for a in rule.actions()):
        return RulePhase.INSTANCE
    return RulePhase.SCHEMA


@dataclass
class PersonalizedView:
    """What a BI tool sees after personalization (Section 4.2.4).

    ``fact_rows`` is the pre-computed spatial selection: "when the OLAP
    session begins the spatial analysis have been done even if the
    analysis tool does not support spatial data processing."

    ``fact`` names the fact table the rows belong to; sessions over
    multi-fact stars materialize one view per fact
    (``session.view(fact=...)``).
    """

    star: StarSchema
    schema: GeoMDSchema
    selection: SelectionSet
    fact_rows: list[int]
    fact: str | None = None

    def cube(self, fact: str | None = None) -> Cube:
        """A cube restricted to the personalized fact rows.

        ``fact_rows`` are row ids of *this view's* fact table; asking for
        a different fact recomputes the selection for that table instead
        of misapplying foreign row ids.
        """
        fact_name = fact or self.fact
        if self.selection.is_empty:
            restriction = None
        elif fact_name == self.fact:
            restriction = self.fact_rows
        else:
            restriction = self.selection.fact_row_ids(self.star, fact_name)
        return Cube(self.star, fact_name).with_selection(restriction)

    @property
    def is_restricted(self) -> bool:
        return not self.selection.is_empty

    def stats(self) -> dict[str, int]:
        total = len(self.star.fact_table(self.fact))
        kept = len(self.fact_rows) if self.is_restricted else total
        return {
            "fact_rows_total": total,
            "fact_rows_kept": kept,
            "members_selected": self.selection.member_count(),
            "layers": len(self.schema.layers),
            "spatial_levels": len(self.schema.spatial_levels),
        }


@dataclass
class PersonalizedSession:
    """One decision maker's analysis session.

    ``view()`` is memoized per fact on the pair ``(selection generation,
    star generation)``: the steady-state request path ("when the OLAP
    session begins the spatial analysis have been done") serves the
    materialized view without re-scanning the fact table, and any
    selection change (acquisition rules, instance re-runs) or star
    mutation (schema rules, data loads) makes the stamp differ, forcing a
    refresh.  On a memo miss the session first consults the engine's
    shared :class:`~repro.personalization.view_store.ViewStore` —
    sessions whose selections hold the same content share one
    materialization there — and only builds privately when the store is
    disabled.  The memo itself stays per-session (one dict compare in
    steady state, no store lock) and is guarded by ``_memo_lock``: the
    threaded HTTP adapter can hit one session concurrently, and the
    unlocked check-then-act used to let two threads race the dict.  Set
    ``engine.enable_caches = False`` to rebuild on every call
    (transparency switch).
    """

    engine: "PersonalizationEngine"
    profile: UserProfile
    context: RuntimeContext
    outcomes: list[RuleOutcome] = field(default_factory=list)
    closed: bool = False
    #: fact name -> ((selection generation, star generation), view)
    _view_memo: dict[str | None, tuple[tuple[int, int], PersonalizedView]] = field(
        default_factory=dict, repr=False
    )
    _memo_lock: threading.Lock = field(
        default_factory=partial(make_lock, "PersonalizedSession._memo_lock"),
        repr=False,
    )

    @property
    def selection(self) -> SelectionSet:
        return self.context.selection

    def _resolve_fact(self, fact: str | None) -> str | None:
        """Normalize the fact argument (explicit name, or the only fact)."""
        star = self.context.star
        if fact is not None:
            star.fact_table(fact)  # existence check
            return fact
        facts = star.schema.facts
        if len(facts) == 1:
            return next(iter(facts))
        raise PersonalizationError(
            f"star schema has {len(facts)} fact tables; call "
            f"view(fact=...) with one of {sorted(facts)}"
        )

    def view(self, fact: str | None = None) -> PersonalizedView:
        """Materialize the personalized view for downstream BI tools."""
        fact_name = self._resolve_fact(fact)
        if not self.engine.enable_caches:
            return self._build_view(fact_name)
        stamp = (self.context.selection.generation, self.context.star.generation)
        with self._memo_lock:
            memoized = self._view_memo.get(fact_name)
            if memoized is not None and memoized[0] == stamp:
                return memoized[1]
        store = self.engine.view_store
        if store is not None:
            view = store.get_or_build(
                self.context.star,
                self.context.geomd_schema,
                fact_name,
                self.context.selection,
            )
        else:
            view = self._build_view(fact_name)
        with self._memo_lock:
            self._view_memo[fact_name] = (stamp, view)
        return view

    def _build_view(self, fact_name: str | None) -> PersonalizedView:
        selection = self.context.selection
        fact_rows = (
            selection.fact_row_ids(self.context.star, fact_name)
            if not selection.is_empty
            else list(self.context.star.fact_table(fact_name).row_ids())
        )
        return PersonalizedView(
            star=self.context.star,
            schema=self.context.geomd_schema,
            selection=selection,
            fact_rows=fact_rows,
            fact=fact_name,
        )

    def record_spatial_selection(self, target: str, condition: str) -> list[RuleOutcome]:
        """Report a user spatial selection to the engine (Section 4.2.1).

        The BI front-end calls this when the user selects instances through
        a spatial expression; acquisition rules whose declared
        ``SpatialSelection(target, expression)`` pattern matches are fired.
        """
        if self.closed:
            raise PersonalizationError("session is closed")
        outcomes = self.engine._fire_spatial_selection(self.context, target, condition)
        self.outcomes.extend(outcomes)
        return outcomes

    def rerun_instance_rules(self) -> list[RuleOutcome]:
        """Re-evaluate instance rules mid-session (after interest changes)."""
        if self.closed:
            raise PersonalizationError("session is closed")
        outcomes = self.engine._run_phase(self.context, RulePhase.INSTANCE)
        self.outcomes.extend(outcomes)
        return outcomes

    def end(self) -> list[RuleOutcome]:
        """Fire SessionEnd rules and close the profile session."""
        if self.closed:
            raise PersonalizationError("session is already closed")
        outcomes = self.engine._run_event(
            self.context, SessionEndEvent(), phases=None
        )
        self.outcomes.extend(outcomes)
        self.profile.close_session()
        self.closed = True
        return outcomes


class PersonalizationEngine:
    """Rule repository + execution over one star schema."""

    def __init__(
        self,
        star: StarSchema,
        user_schema: UserModelSchema,
        geo_source: GeoDataSource | None = None,
        parameters: dict[str, object] | None = None,
        metric: Metric | None = None,
        snap_tolerance: float = 1.0,
        validate_rules: bool = True,
        session_factory: Callable[..., PersonalizedSession] | None = None,
        enable_caches: bool = True,
        view_store_size: int = 128,
        incremental_views: bool = True,
        view_store: ViewStore | None = None,
        enable_history: bool = True,
    ) -> None:
        schema = star.schema
        if not isinstance(schema, GeoMDSchema):
            raise PersonalizationError(
                "the engine requires a star over a GeoMDSchema (lift the MD "
                "schema with GeoMDSchema.from_md before loading)"
            )
        self.star = star
        self.geomd_schema: GeoMDSchema = schema
        self.user_schema = user_schema
        self.geo_source = geo_source
        self.parameters = dict(parameters or {})
        self.metric = metric or PlanarMetric()
        self.snap_tolerance = snap_tolerance
        self.validate_rules = validate_rules
        #: Master switch for the generation-keyed view memo *and* the
        #: shared view store (sessions read it on every ``view()`` call,
        #: so flipping it at runtime takes effect immediately — the
        #: benchmark harness uses this to prove cached and uncached
        #: responses are identical).
        self.enable_caches = enable_caches
        #: Shared materialized-view store: sessions with content-equal
        #: selections share one build, fact appends patch instead of
        #: rebuilding.  ``view_store_size=0`` removes it (sessions fall
        #: back to private memo + rebuild); ``incremental_views=False``
        #: keeps sharing but turns fact deltas back into invalidations.
        #: An explicit ``view_store`` instance overrides construction —
        #: the cluster tier passes a backend-backed store with a fixed
        #: namespace so pool workers share builds; the default goes
        #: through the env-selected factory.
        if view_store is not None:
            self.view_store: ViewStore | None = view_store
        elif view_store_size > 0:
            from repro.cluster.config import make_view_store

            self.view_store = make_view_store(
                view_store_size, incremental=incremental_views
            )
        else:
            self.view_store = None
        if self.view_store is not None:
            star.add_mutation_listener(self._on_star_mutation)
        #: Generation time travel: checkpoints + mutation-log replay so
        #: ``execute(..., as_of=g)`` answers against a past generation.
        #: One history per star — a second engine over the same star
        #: reuses the existing attachment.
        if enable_history:
            from repro.storage.snapshot import StarHistory

            self.history = StarHistory.attach(star)
        else:
            self.history = star.history
        self.rules: list[RegisteredRule] = []
        #: Hook points for service layers: a custom session class and
        #: observers fired after SessionStart rules have run (used e.g.
        #: for per-tenant session accounting without subclassing).
        self.session_factory = session_factory or PersonalizedSession
        self._session_hooks: list[Callable[[PersonalizedSession], None]] = []

    def add_session_hook(
        self, hook: Callable[[PersonalizedSession], None]
    ) -> None:
        """Register an observer called with each newly started session."""
        self._session_hooks.append(hook)

    def _on_star_mutation(self, mutation: StarMutation) -> None:
        """Maintain the shared view store on every star mutation.

        Fact appends carry a typed delta and are patched incrementally;
        member/feature/schema mutations dispatch on their delta payload
        (carry, patch, or — for in-place member updates on referenced
        dimensions — drop; see :meth:`ViewStore.on_mutation`).
        """
        store = self.view_store
        if store is not None:
            store.on_mutation(self.star, mutation)

    def detach(self) -> None:
        """Stop maintaining the view store against the star.

        An engine registers a mutation listener for its store at
        construction and the star holds it strongly; code that replaces
        an engine over a live star calls this so the superseded store
        stops being patched and can be collected.
        """
        if self.view_store is not None:
            self.star.remove_mutation_listener(self._on_star_mutation)
            self.view_store.invalidate()

    # -- rule repository -----------------------------------------------------

    def add_rule(
        self,
        source: str | Rule,
        phase: RulePhase | None = None,
    ) -> RegisteredRule:
        """Parse, analyze and register one rule."""
        if isinstance(source, Rule):
            rule = source
            text = ""
        else:
            rule = parse_rule(source)
            text = source
        if any(existing.rule.name == rule.name for existing in self.rules):
            raise PersonalizationError(f"duplicate rule name {rule.name!r}")
        if self.validate_rules:
            analyzer = SemanticAnalyzer(
                self.user_schema,
                self.geomd_schema,
                self.geomd_schema,
                self.parameters,
                known_layers=self._promised_layers(),
            )
            analyzer.check(rule)
        registered = RegisteredRule(
            rule=rule,
            source=text,
            phase=phase or classify_rule(rule),
        )
        self.rules.append(registered)
        return registered

    def add_rules(self, sources: Iterable[str | Rule]) -> list[RegisteredRule]:
        return [self.add_rule(source) for source in sources]

    def _promised_layers(self) -> set[str]:
        """Layer names any registered rule's AddLayer will create."""
        promised: set[str] = set()
        for registered in self.rules:
            for action in registered.rule.actions():
                if isinstance(action, AddLayerAction):
                    promised.add(action.layer_name.value)
        return promised

    def rule(self, name: str) -> RegisteredRule:
        for registered in self.rules:
            if registered.rule.name == name:
                return registered
        raise PersonalizationError(f"no rule named {name!r}")

    # -- session lifecycle --------------------------------------------------------

    def start_session(
        self,
        profile: UserProfile,
        location: Point | None = None,
    ) -> PersonalizedSession:
        """Open an analysis session and fire SessionStart rules.

        Schema rules run before instance rules, implementing the two-step
        process of Fig. 1 within a single trigger.
        """
        profile.open_session(location)
        context = RuntimeContext(
            user_profile=profile,
            md_schema=self.geomd_schema,
            geomd_schema=self.geomd_schema,
            star=self.star,
            parameters=dict(self.parameters),
            metric=self.metric,
            snap_tolerance=self.snap_tolerance,
            geo_source=self.geo_source,
            selection=SelectionSet(),
        )
        session = self.session_factory(
            engine=self, profile=profile, context=context
        )
        session.outcomes.extend(
            self._run_event(
                context,
                SessionStartEvent(),
                phases=(RulePhase.SCHEMA, RulePhase.INSTANCE),
            )
        )
        for hook in self._session_hooks:
            hook(session)
        return session

    # -- internal firing ---------------------------------------------------------

    @staticmethod
    def _safe_execute(evaluator: Evaluator, registered: RegisteredRule) -> RuleOutcome:
        """Execute one rule; missing context data skips it (ECA semantics:
        an unfulfillable condition fires no action) instead of aborting the
        whole session."""
        try:
            return evaluator.execute(registered.rule)
        except PRMLRuntimeError as exc:
            return RuleOutcome(rule_name=registered.rule.name, error=str(exc))

    def _run_event(
        self,
        context: RuntimeContext,
        event: SessionStartEvent | SessionEndEvent,
        phases: tuple[RulePhase, ...] | None,
    ) -> list[RuleOutcome]:
        evaluator = Evaluator(context)
        outcomes: list[RuleOutcome] = []
        ordered: list[RegisteredRule] = []
        if phases is None:
            ordered = [r for r in self.rules if r.enabled]
        else:
            for phase in phases:
                ordered.extend(
                    r for r in self.rules if r.enabled and r.phase is phase
                )
        for registered in ordered:
            if type(registered.rule.event) is not type(event):
                continue
            outcomes.append(self._safe_execute(evaluator, registered))
        return outcomes

    def _run_phase(
        self, context: RuntimeContext, phase: RulePhase
    ) -> list[RuleOutcome]:
        evaluator = Evaluator(context)
        return [
            self._safe_execute(evaluator, registered)
            for registered in self.rules
            if registered.enabled
            and registered.phase is phase
            and isinstance(registered.rule.event, SessionStartEvent)
        ]

    def _fire_spatial_selection(
        self,
        context: RuntimeContext,
        target: str,
        condition: str,
    ) -> list[RuleOutcome]:
        """Fire acquisition rules whose event pattern matches the report.

        Matching is structural: the canonical prints of the declared and
        reported target path and condition expression must agree.
        """
        reported_target = str(parse_path(target))
        reported_condition = print_expr(parse_expression(condition))
        evaluator = Evaluator(context)
        outcomes: list[RuleOutcome] = []
        for registered in self.rules:
            if not registered.enabled:
                continue
            if not isinstance(registered.rule.event, SpatialSelectionEvent):
                continue
            # Compare against the patterns canonicalized at registration;
            # only the *reported* target/condition is parsed per call.
            if registered.event_target != reported_target:
                continue
            if registered.event_condition != reported_condition:
                continue
            # Same ECA-safe path as the other phases: a raising
            # acquisition rule records an errored outcome instead of
            # aborting the whole selection report.
            outcomes.append(self._safe_execute(evaluator, registered))
        return outcomes
