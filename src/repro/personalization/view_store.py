"""The engine-owned shared materialized-view store.

PR 2 memoized each :class:`~repro.personalization.engine.PersonalizedView`
*per session*; a thousand analysts with the same personalization outcome
paid a thousand identical fact-table scans, and any star mutation threw
every view away.  This store makes materialized views shared, maintained
warehouse objects (the shift the user-centric-warehouse survey line of
related work describes):

* **Sharing** — views are keyed on ``(fact, selection fingerprint, star
  generation)``.  The fingerprint is the *content* identity of a
  :class:`~repro.prml.evaluator.SelectionSet` (sorted member/feature
  triples, see :meth:`SelectionSet.fingerprint`), not the per-session
  uid, so any number of sessions whose selections are equal share one
  build.  Tenant isolation is structural: each engine owns its own store
  over its own star.
* **Incremental maintenance** — fact appends arrive as typed
  :class:`~repro.storage.star.StarMutation` deltas carrying the appended
  row ids.  Instead of rebuilding, every live view is *patched*: the
  delta rows are filtered through the view's selection and the survivors
  appended.  Views over other fact tables of a multi-fact star are
  carried to the new generation untouched.  Member/feature/schema
  mutations have no delta shape, so they keep the PR 2 fallback: full
  invalidation, rebuild on next demand.
* **Bounds and transparency** — the store is LRU-bounded (``max_size``)
  and thread-safe; ``PersonalizationEngine(view_store_size=0)`` removes
  it entirely (sessions fall back to their private memo + rebuilds) and
  ``incremental=False`` turns every fact delta back into an invalidation,
  the off-switches the benchmark harness uses to prove both layers are
  transparent.

This deliberately does *not* reuse :class:`repro.lru.ThreadSafeLRU`:
the store's defining operations — single-flight builds under the lock
and wholesale generational *rekeying* of the map on every fact delta —
are not LRU-map semantics, and bolting them onto the shared primitive
would complicate every other owner for one consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.concurrency import make_rlock
from repro.storage.star import StarMutation, StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.geomd.schema import GeoMDSchema
    from repro.personalization.engine import PersonalizedView
    from repro.prml.evaluator import SelectionSet

__all__ = ["ViewStore"]

#: (fact name, selection fingerprint, star generation)
_Key = tuple[str, str, int]


class _Entry:
    """One stored view plus its lazily-resolved patch filter.

    ``relevant`` caches ``selection.relevant_leaf_keys`` (the projected
    row filter) the first time the entry is patched: only member/feature/
    schema mutations could change it and those invalidate the whole
    store, so within an entry's lifetime the projection is immutable and
    appends pay plain set-membership checks instead of re-resolving
    roll-ups per insert.
    """

    __slots__ = ("view", "relevant")

    def __init__(self, view: "PersonalizedView") -> None:
        self.view = view
        self.relevant: dict[str, set[str]] | None = None


class ViewStore:
    """Thread-safe, LRU-bounded store of shared materialized views."""

    def __init__(self, max_size: int = 128, incremental: bool = True) -> None:
        if max_size < 1:
            raise ValueError(
                "max_size must be >= 1 (disable the store with "
                "PersonalizationEngine(view_store_size=0) instead)"
            )
        self.max_size = max_size
        #: When False, fact deltas degrade to full invalidation (the
        #: incremental-maintenance off-switch; runtime-mutable).
        self.incremental = incremental
        self._lock = make_rlock("ViewStore._lock")
        # guarded-by: _lock
        self._entries: "OrderedDict[_Key, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.patches = 0
        self.carries = 0
        self.evictions = 0
        self.invalidations = 0

    # -- lookup / build -------------------------------------------------------

    def get_or_build(
        self,
        star: StarSchema,
        schema: "GeoMDSchema",
        fact: str,
        selection: "SelectionSet",
    ) -> "PersonalizedView":
        """The shared view for ``(fact, selection content, star state)``.

        Builds at most once per key: the store lock is held across the
        build, so N sessions racing on an identical cold selection pay
        one fact scan, not N (single-flight).  The accepted trade: cold
        builds of *different* selections serialize behind it, and a
        mutation's ``on_mutation`` delivery waits for an in-flight build
        (never the reverse — ``note_*_change`` releases the star's cache
        lock before notifying, so the two locks cannot deadlock).
        """
        with self._lock:
            key = (fact, selection.fingerprint(), star.generation)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.view
            self.misses += 1
            # Snapshot the live selection, then key the entry by the
            # *snapshot's* fingerprint: a concurrent acquisition rule
            # growing the selection between lookup and build must not
            # store the new content under the old content's key (that
            # would silently serve another session's rows to everyone
            # whose selection still fingerprints to the old key).
            frozen = selection.snapshot()
            key = (fact, frozen.fingerprint(), star.generation)
            view = self._build(star, schema, fact, frozen)
            self.builds += 1
            self._entries[key] = _Entry(view)
            self._trim()
            return view

    def _build(
        self,
        star: StarSchema,
        schema: "GeoMDSchema",
        fact: str,
        frozen: "SelectionSet",
    ) -> "PersonalizedView":
        """Materialize from an already-frozen selection (the stored view
        must not alias live session state — the session keeps mutating
        its selection while other sessions read the shared view)."""
        from repro.personalization.engine import PersonalizedView

        if frozen.is_empty:
            fact_rows = list(star.fact_table(fact).row_ids())
        else:
            fact_rows = frozen.fact_row_ids(star, fact)
        return PersonalizedView(
            star=star,
            schema=schema,
            selection=frozen,
            fact_rows=fact_rows,
            fact=fact,
        )

    # -- maintenance ----------------------------------------------------------

    def on_mutation(self, star: StarSchema, mutation: StarMutation) -> None:
        """React to one star mutation (the engine's listener target)."""
        if mutation.is_fact_delta and self.incremental:
            self._apply_fact_delta(star, mutation)
        else:
            self.invalidate()

    def _apply_fact_delta(
        self, star: StarSchema, mutation: StarMutation
    ) -> None:
        """Patch every live view instead of rebuilding it.

        Only entries exactly one generation behind the delta are
        patchable; anything older missed an intermediate mutation and is
        dropped (the build path recreates it on demand).  Entries over
        *other* facts of a multi-fact star are unaffected by a fact append
        and are carried to the new generation as-is.
        """
        with self._lock:
            for key in list(self._entries):
                fact, fingerprint, generation = key
                entry = self._entries.pop(key)
                if generation != mutation.generation - 1:
                    self.invalidations += 1
                    continue
                new_key = (fact, fingerprint, mutation.generation)
                if fact != mutation.fact:
                    self._entries[new_key] = entry
                    self.carries += 1
                    continue
                entry.view = self._patch(star, entry, mutation.row_ids)
                self._entries[new_key] = entry
                self.patches += 1
            self._trim()

    def _patch(
        self,
        star: StarSchema,
        entry: _Entry,
        row_ids: tuple[int, ...],
    ) -> "PersonalizedView":
        from repro.personalization.engine import PersonalizedView

        view = entry.view
        # fact_rows are ascending; a build that raced the append may have
        # already scanned the new rows, so only genuinely-new ids append
        # (guards against double-counting).
        last = view.fact_rows[-1] if view.fact_rows else -1
        fresh = [row_id for row_id in row_ids if row_id > last]
        selection = view.selection
        if fresh and not selection.is_empty:
            if entry.relevant is None:
                entry.relevant = selection.relevant_leaf_keys(
                    star, star.fact_table(view.fact)
                )
            if entry.relevant:
                # Filter the delta on the encoded columns directly
                # (rows_matching takes no locks, so no new lock edges).
                fresh = star.fact_table(view.fact).rows_matching(
                    entry.relevant, row_ids=fresh
                )
        if not fresh:
            return view
        return PersonalizedView(
            star=view.star,
            schema=view.schema,
            selection=selection,
            fact_rows=view.fact_rows + fresh,
            fact=view.fact,
        )

    def invalidate(self) -> None:
        """Drop every entry (member/feature/schema mutation fallback)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    # -- bounds / introspection -----------------------------------------------

    def _trim(self) -> None:  # guarded-by-caller: _lock
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for the health endpoint and the benchmark harness."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_size": self.max_size,
                "incremental": self.incremental,
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "patches": self.patches,
                "carries": self.carries,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
