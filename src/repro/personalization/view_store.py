"""The engine-owned shared materialized-view store.

PR 2 memoized each :class:`~repro.personalization.engine.PersonalizedView`
*per session*; a thousand analysts with the same personalization outcome
paid a thousand identical fact-table scans, and any star mutation threw
every view away.  This store makes materialized views shared, maintained
warehouse objects (the shift the user-centric-warehouse survey line of
related work describes):

* **Sharing** — views are keyed on ``(fact, selection fingerprint, star
  generation)``.  The fingerprint is the *content* identity of a
  :class:`~repro.prml.evaluator.SelectionSet` (sorted member/feature
  triples, see :meth:`SelectionSet.fingerprint`), not the per-session
  uid, so any number of sessions whose selections are equal share one
  build.  Tenant isolation is structural: each engine owns its own store
  over its own star.
* **Incremental maintenance** — fact appends arrive as typed
  :class:`~repro.storage.star.StarMutation` deltas carrying the appended
  row ids.  Instead of rebuilding, every live view is *patched*: the
  delta rows are filtered through the view's selection and the survivors
  appended.  Views over other fact tables of a multi-fact star are
  carried to the new generation untouched.  Member/feature/schema
  mutations now dispatch on their delta too: a view's ``fact_rows``
  depend only on member *existence and parent links* of the dimensions
  its selection references (never on features, layers or member
  attributes), so feature mutations and schema patches carry every
  entry, a member mutation carries the entries whose selection does not
  reference the mutated dimension (the PR 9 bugfix — these used to be
  thrown away), a member *add* inside a referenced dimension carries the
  entry and re-derives its patch filter (a new leaf cannot be referenced
  by any existing fact row), and only a member *update* inside a
  referenced dimension still drops the entry.
* **Bounds and transparency** — the store is LRU-bounded (``max_size``)
  and thread-safe; ``PersonalizationEngine(view_store_size=0)`` removes
  it entirely (sessions fall back to their private memo + rebuilds) and
  ``incremental=False`` turns every fact delta back into an invalidation,
  the off-switches the benchmark harness uses to prove both layers are
  transparent.

This deliberately does *not* reuse :class:`repro.lru.ThreadSafeLRU`:
the store's defining operations — single-flight builds under the lock
and wholesale generational *rekeying* of the map on every fact delta —
are not LRU-map semantics, and bolting them onto the shared primitive
would complicate every other owner for one consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.concurrency import make_rlock
from repro.storage.star import StarMutation, StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.geomd.schema import GeoMDSchema
    from repro.personalization.engine import PersonalizedView
    from repro.prml.evaluator import SelectionSet

__all__ = ["ViewStore"]

#: (fact name, selection fingerprint, star generation)
_Key = tuple[str, str, int]


class _Entry:
    """One stored view plus its lazily-resolved patch filter.

    ``relevant`` caches ``selection.relevant_leaf_keys`` (the projected
    row filter) the first time the entry is patched.  The projection
    depends only on the members of the dimensions the selection
    references: mutations that could change it either drop the entry
    (member update in a referenced dimension) or reset the cache to
    ``None`` (member add in a referenced dimension — a new leaf under a
    selected ancestor joins the filter), so appends pay plain
    set-membership checks instead of re-resolving roll-ups per insert.
    """

    __slots__ = ("view", "relevant")

    def __init__(self, view: "PersonalizedView") -> None:
        self.view = view
        self.relevant: dict[str, set[str]] | None = None

    def references_dimension(self, dimension: str) -> bool:
        """Whether the view's selection constrains ``dimension``."""
        return any(
            dim == dimension for dim, _level in self.view.selection.members
        )


class ViewStore:
    """Thread-safe, LRU-bounded store of shared materialized views."""

    def __init__(self, max_size: int = 128, incremental: bool = True) -> None:
        if max_size < 1:
            raise ValueError(
                "max_size must be >= 1 (disable the store with "
                "PersonalizationEngine(view_store_size=0) instead)"
            )
        self.max_size = max_size
        #: When False, fact deltas degrade to full invalidation (the
        #: incremental-maintenance off-switch; runtime-mutable).
        self.incremental = incremental
        self._lock = make_rlock("ViewStore._lock")
        # guarded-by: _lock
        self._entries: "OrderedDict[_Key, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.patches = 0
        self.carries = 0
        self.evictions = 0
        self.invalidations = 0

    # -- lookup / build -------------------------------------------------------

    def get_or_build(
        self,
        star: StarSchema,
        schema: "GeoMDSchema",
        fact: str,
        selection: "SelectionSet",
    ) -> "PersonalizedView":
        """The shared view for ``(fact, selection content, star state)``.

        Builds at most once per key: the store lock is held across the
        build, so N sessions racing on an identical cold selection pay
        one fact scan, not N (single-flight).  The accepted trade: cold
        builds of *different* selections serialize behind it, and a
        mutation's ``on_mutation`` delivery waits for an in-flight build
        (never the reverse — ``note_*_change`` releases the star's cache
        lock before notifying, so the two locks cannot deadlock).
        """
        with self._lock:
            key = (fact, selection.fingerprint(), star.generation)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.view
            self.misses += 1
            # Snapshot the live selection, then key the entry by the
            # *snapshot's* fingerprint: a concurrent acquisition rule
            # growing the selection between lookup and build must not
            # store the new content under the old content's key (that
            # would silently serve another session's rows to everyone
            # whose selection still fingerprints to the old key).
            frozen = selection.snapshot()
            key = (fact, frozen.fingerprint(), star.generation)
            view = self._build(star, schema, fact, frozen)
            self.builds += 1
            self._entries[key] = _Entry(view)
            self._trim()
            return view

    def _build(
        self,
        star: StarSchema,
        schema: "GeoMDSchema",
        fact: str,
        frozen: "SelectionSet",
    ) -> "PersonalizedView":
        """Materialize from an already-frozen selection (the stored view
        must not alias live session state — the session keeps mutating
        its selection while other sessions read the shared view)."""
        from repro.personalization.engine import PersonalizedView

        if frozen.is_empty:
            fact_rows = list(star.fact_table(fact).row_ids())
        else:
            fact_rows = frozen.fact_row_ids(star, fact)
        return PersonalizedView(
            star=star,
            schema=schema,
            selection=frozen,
            fact_rows=fact_rows,
            fact=fact,
        )

    # -- maintenance ----------------------------------------------------------

    def on_mutation(self, star: StarSchema, mutation: StarMutation) -> None:
        """React to one star mutation (the engine's listener target).

        With ``incremental`` off every kind degrades to full
        invalidation — the transparency mode EXT8 benchmarks against.
        """
        if not self.incremental:
            self.invalidate()
            return
        if mutation.is_fact_delta:
            self._apply_fact_delta(star, mutation)
        elif mutation.kind == "member" and mutation.dimension is not None:
            self._apply_member_mutation(mutation)
        elif mutation.kind == "feature":
            # Layers are append-only and a view's fact_rows never depend
            # on features — every entry survives as-is.
            self._carry_all(mutation)
        elif mutation.kind == "schema" and mutation.is_schema_patch:
            # AddLayer / BecomeSpatial change the schema, not membership;
            # row sets are unaffected (a geometry backfill arrives as a
            # separate member-update mutation and is handled above).
            self._carry_all(mutation)
        else:
            self.invalidate()

    def _apply_member_mutation(self, mutation: StarMutation) -> None:
        """Scope a member mutation to the entries it can actually affect.

        Entries whose selection does not reference the mutated dimension
        carry to the new generation untouched (their row filter cannot
        mention it).  Member *adds* inside a referenced dimension also
        carry — a brand-new member is referenced by no existing fact
        row — but the cached patch filter is re-derived on next use
        because a new leaf under a selected ancestor joins it.  Member
        *updates* inside a referenced dimension drop the entry.
        """
        dimension = mutation.dimension
        additive = mutation.is_member_add
        with self._lock:
            for key in list(self._entries):
                fact, fingerprint, generation = key
                entry = self._entries.pop(key)
                if generation != mutation.generation - 1:
                    self.invalidations += 1
                    continue
                referenced = entry.references_dimension(dimension)
                if referenced and not additive:
                    self.invalidations += 1
                    continue
                if referenced:
                    entry.relevant = None
                self._entries[(fact, fingerprint, mutation.generation)] = entry
                self.carries += 1
            self._trim()

    def _carry_all(self, mutation: StarMutation) -> None:
        """Rekey every contiguous entry to the mutation's generation."""
        with self._lock:
            for key in list(self._entries):
                fact, fingerprint, generation = key
                entry = self._entries.pop(key)
                if generation != mutation.generation - 1:
                    self.invalidations += 1
                    continue
                self._entries[(fact, fingerprint, mutation.generation)] = entry
                self.carries += 1
            self._trim()

    def _apply_fact_delta(
        self, star: StarSchema, mutation: StarMutation
    ) -> None:
        """Patch every live view instead of rebuilding it.

        Only entries exactly one generation behind the delta are
        patchable; anything older missed an intermediate mutation and is
        dropped (the build path recreates it on demand).  Entries over
        *other* facts of a multi-fact star are unaffected by a fact append
        and are carried to the new generation as-is.
        """
        with self._lock:
            for key in list(self._entries):
                fact, fingerprint, generation = key
                entry = self._entries.pop(key)
                if generation != mutation.generation - 1:
                    self.invalidations += 1
                    continue
                new_key = (fact, fingerprint, mutation.generation)
                if fact != mutation.fact:
                    self._entries[new_key] = entry
                    self.carries += 1
                    continue
                entry.view = self._patch(star, entry, mutation.row_ids)
                self._entries[new_key] = entry
                self.patches += 1
            self._trim()

    def _patch(
        self,
        star: StarSchema,
        entry: _Entry,
        row_ids: tuple[int, ...],
    ) -> "PersonalizedView":
        from repro.personalization.engine import PersonalizedView

        view = entry.view
        # fact_rows are ascending; a build that raced the append may have
        # already scanned the new rows, so only genuinely-new ids append
        # (guards against double-counting).
        last = view.fact_rows[-1] if view.fact_rows else -1
        fresh = [row_id for row_id in row_ids if row_id > last]
        selection = view.selection
        if fresh and not selection.is_empty:
            if entry.relevant is None:
                entry.relevant = selection.relevant_leaf_keys(
                    star, star.fact_table(view.fact)
                )
            if entry.relevant:
                # Filter the delta on the encoded columns directly
                # (rows_matching takes no locks, so no new lock edges).
                fresh = star.fact_table(view.fact).rows_matching(
                    entry.relevant, row_ids=fresh
                )
        if not fresh:
            return view
        return PersonalizedView(
            star=view.star,
            schema=view.schema,
            selection=selection,
            fact_rows=view.fact_rows + fresh,
            fact=view.fact,
        )

    def invalidate(self) -> None:
        """Drop every entry (member/feature/schema mutation fallback)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    # -- bounds / introspection -----------------------------------------------

    def _trim(self) -> None:  # guarded-by-caller: _lock
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for the health endpoint and the benchmark harness."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_size": self.max_size,
                "incremental": self.incremental,
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "patches": self.patches,
                "carries": self.carries,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
