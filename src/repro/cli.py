"""Command-line interface: ``python -m repro <command>``.

Small operational commands over the reproduction:

``demo``
    Run the full paper scenario and print the personalized-view report.
``rules``
    Parse + semantically check a PRML rule file (or the built-in paper
    rules with ``--paper``), printing the canonical form.
``ddl``
    Emit the star-schema DDL for the (personalized) GeoMD schema.
``map``
    Write the personalized session SVG map.
``query``
    Run one GeoMDQL query over the personalized view.
``serve``
    Start the web portal on a local port (interactive use only).
``lint``
    Run the concurrency / cache-correctness lint suite against the
    committed baseline (see ``repro.analysis``).
``workload``
    Synthetic traffic: ``generate`` a deterministic event stream for a
    scale tier, ``describe`` a stream file, or ``replay`` one against a
    freshly built portal (optionally a multi-process worker pool),
    printing the latency/throughput/cache report as JSON (see
    ``repro.workload``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.errors import ReproError, PRMLError
from repro.mda import DIALECTS, generate_ddl
from repro.olap import execute, parse_query
from repro.personalization import PersonalizationEngine
from repro.prml import SemanticAnalyzer, parse_rules, print_rule
from repro.viz import render_session_map

__all__ = ["main", "build_parser"]


def _build_engine(seed: int, threshold: int, view_store=None):
    world = generate_world(WorldConfig(seed=seed))
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": threshold},
        view_store=view_store,
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    return world, star, engine


def _open_session(world, engine):
    profile = build_regional_manager_profile()
    return engine.start_session(profile, location=world.stores[0].location)


def cmd_demo(args: argparse.Namespace) -> int:
    world, star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    print("personalized view:", session.view().stats())
    for outcome in session.outcomes:
        status = f"error: {outcome.error}" if outcome.error else (
            f"actions={outcome.fired_actions} selected={outcome.selected_instances}"
        )
        print(f"  rule {outcome.rule_name}: {status}")
    print()
    print(session.view().cube().by("Store.City").result().format_table())
    session.end()
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    if args.paper:
        sources = "\n".join(ALL_PAPER_RULES.values())
    elif args.file:
        sources = Path(args.file).read_text()
    else:
        sources = sys.stdin.read()
    try:
        rules = parse_rules(sources)
    except PRMLError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 1
    world, _star, engine = _build_engine(args.seed, args.threshold)
    del world
    analyzer = SemanticAnalyzer(
        engine.user_schema,
        engine.geomd_schema,
        engine.geomd_schema,
        engine.parameters,
        known_layers=engine._promised_layers() | {"Airport", "Train"},
    )
    status = 0
    for rule in rules:
        issues = analyzer.analyze(rule)
        marker = "OK " if not issues else "ERR"
        print(f"[{marker}] Rule {rule.name}")
        for issue in issues:
            print(f"      - {issue}")
            status = 1
        if args.print:
            print(print_rule(rule))
            print()
    return status


def cmd_ddl(args: argparse.Namespace) -> int:
    world, _star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    print(generate_ddl(session.view().schema, dialect=args.dialect), end="")
    session.end()
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    world, _star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    svg = render_session_map(session, world)
    Path(args.output).write_text(svg)
    print(f"wrote {args.output}")
    session.end()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    world, star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    view = session.view()
    try:
        query = parse_query(args.q, view.schema)
    except ReproError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        session.end()
        return 1
    result = execute(star, query, view.fact_rows if view.is_restricted else None)
    print(result.format_table())
    print(f"({result.fact_rows_matched} of {result.fact_rows_scanned} rows matched)")
    session.end()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_workload(args: argparse.Namespace) -> int:
    import dataclasses as _dataclasses
    import json

    from repro.workload import (
        EventStream,
        default_profile,
        demo_journal_profile,
        generator_for_tier,
        tier,
    )
    from repro.workload.harness import build_tier_world

    if args.action == "generate":
        selected = tier(args.tier)
        if args.stream_seed is not None:
            selected = _dataclasses.replace(
                selected,
                config=_dataclasses.replace(
                    selected.config, seed=args.stream_seed
                ),
            )
        profile = (
            demo_journal_profile()
            if args.profile == "journal"
            else default_profile()
        )
        world = build_tier_world(selected)
        stream = generator_for_tier(selected, world, profile=profile).stream()
        Path(args.output).write_text(stream.to_jsonl())
        fact_rows = world.config.sales
        print(
            json.dumps(
                {"wrote": args.output, **stream.describe(fact_rows=fact_rows)},
                indent=2,
            )
        )
        return 0

    stream = EventStream.from_jsonl(Path(args.stream).read_text())
    if args.action == "describe":
        print(json.dumps(stream.describe(), indent=2))
        return 0
    return _workload_replay(args, stream)


def _workload_replay(args: argparse.Namespace, stream) -> int:
    """Replay a stream file against a freshly built matching portal."""
    import dataclasses as _dataclasses
    import json
    import os
    import shutil
    import tempfile

    from repro.workload import (
        ClusterTarget,
        InProcessTarget,
        ReplayDriver,
        health_window,
        merge_health,
    )
    from repro.workload.harness import WORLD_SCALES, build_workload_portal

    config = stream.header.get("config", {})
    base = WORLD_SCALES[args.world_scale]
    world_config = _dataclasses.replace(
        base, sales=base.sales * int(config.get("fact_multiplier", 1))
    )
    from repro.data import generate_world

    world = generate_world(world_config)
    datamarts = tuple(config.get("datamarts") or ("default",))
    active = stream.active_users()

    pool = backend = state_dir = None
    if args.workers > 1:
        from repro.cluster.backend import SqliteBackend
        from repro.cluster.pool import WorkerPool

        state_dir = tempfile.mkdtemp(prefix="repro-workload-")
        backend = SqliteBackend(os.path.join(state_dir, "state.sqlite"))
        pool = WorkerPool(
            lambda worker_id: build_workload_portal(
                world, active, datamarts=datamarts, backend=backend
            ),
            workers=args.workers,
        )
        pool.wait_ready(timeout=180.0)
        target = ClusterTarget(pool)
    else:
        target = InProcessTarget(
            build_workload_portal(world, active, datamarts=datamarts)
        )
    try:
        driver = ReplayDriver(target)
        driver.resolve_as_of()
        before = merge_health(target.health())
        if args.mode == "serial":
            report, _bodies = driver.replay_serial(stream)
        elif args.mode == "closed":
            report = driver.replay_closed(stream, actors=args.actors)
        else:
            report = driver.replay_open(
                stream, rate_per_s=args.rate, senders=args.actors
            )
        after = merge_health(target.health())
        print(
            json.dumps(
                {
                    "report": report.to_dict(),
                    "health_window": health_window(before, after),
                },
                indent=2,
            )
        )
        return 1 if report.errors else 0
    finally:
        target.close()
        if pool is not None:
            pool.stop()
        if backend is not None:
            backend.close()
        if state_dir is not None:
            shutil.rmtree(state_dir, ignore_errors=True)


def _build_portal_app(args, backend=None):  # pragma: no cover - network
    """Build the two-tenant demo portal, wired to the selected backend.

    With an explicit ``backend`` (the worker pool passes the parent's
    shared one) every store gets a *fixed* namespace so all workers see
    the same sessions, query cache, view builds and journal; otherwise
    the env-selected defaults apply (fresh namespaces, or plain in-heap
    stores in the default mode).
    """
    from repro.cluster.config import (
        make_journal,
        make_query_cache,
        make_session_store,
        make_view_store,
    )
    from repro.service import DatamartRegistry, PersonalizationService
    from repro.web import PortalApp

    registry = DatamartRegistry()
    # A second tenant on a differently seeded world demonstrates the
    # multi-datamart routing of POST /api/v1/login {"datamart": ...}.
    tenants = [
        (args.datamart, args.seed, True),
        (f"{args.datamart}-alt", args.seed + 1, False),
    ]
    for name, seed, default in tenants:
        view_store = (
            make_view_store(128, namespace=f"pool-views-{name}", backend=backend)
            if backend is not None
            else None
        )
        _world, _star, engine = _build_engine(
            seed, args.threshold, view_store=view_store
        )
        tenant = registry.register(
            name, engine, description=f"sales star (seed {seed})", default=default
        )
        tenant.register_user(build_regional_manager_profile())
    if backend is not None:
        store = make_session_store(
            ttl=args.session_ttl, namespace="pool-sessions", backend=backend
        )
        query_cache = make_query_cache(
            256, namespace="pool-qcache", backend=backend
        )
        journal = make_journal(namespace="pool-journal", backend=backend)
    else:
        store = make_session_store(ttl=args.session_ttl)
        query_cache = None
        journal = None
    service = PersonalizationService(
        registry,
        session_store=store,
        query_cache=query_cache,
        journal=journal,
    )
    # Late-bind the rehydration resolver (the store is built before the
    # service that owns the engines exists).
    if getattr(store, "resolver", "absent") is None:
        store.resolver = service._rehydrate_session
    return PortalApp(service=service)


def cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - network
    import os
    import time

    from repro.web.server import serve

    if args.backend:
        os.environ["REPRO_BACKEND"] = args.backend
    if args.state:
        os.environ["REPRO_STATE"] = args.state
    from repro.cluster.config import backend_kind, shared_backend

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 1
    if args.workers == 1:
        app = _build_portal_app(args)
        print(
            f"serving /api/v1 on http://{args.host}:{args.port} "
            f"(backend {backend_kind()}; session TTL {args.session_ttl:g}s; "
            "Ctrl-C stops)"
        )
        serve(app, args.host, args.port)
        return 0

    # Multi-process serving: workers must share state through a
    # persistent backend (forked heaps are invisible to each other).
    if backend_kind() != "sqlite":
        print(
            "--workers > 1 requires the persistent backend "
            "(pass --backend sqlite, or set REPRO_BACKEND=sqlite)",
            file=sys.stderr,
        )
        return 1
    from repro.cluster.pool import WorkerPool

    # Resolve the shared backend in the parent, pre-fork: the workers
    # inherit the object (and its resolved file path) across the fork.
    backend = shared_backend()
    pool = WorkerPool(
        lambda worker_id: _build_portal_app(args, backend=backend),
        workers=args.workers,
        host=args.host,
        port=args.port,
    )
    try:
        pool.wait_ready()
        shards = ", ".join(str(port) for _host, port in pool.shard_addresses)
        print(
            f"serving /api/v1 on http://{pool.address[0]}:{pool.address[1]} "
            f"({args.workers} workers, shard ports {shards}; state "
            f"{backend.stats().get('path', '?')}; Ctrl-C stops)"
        )
        while pool.alive == args.workers:
            time.sleep(1.0)
        print("a worker exited; shutting the pool down", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        pool.stop()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial data warehouse personalization (EDBT 2010 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--threshold", type=int, default=3, help="Example 5.3 interest threshold"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper scenario").set_defaults(func=cmd_demo)

    rules_cmd = sub.add_parser("rules", help="check PRML rules")
    rules_cmd.add_argument("file", nargs="?", help="rule file (default: stdin)")
    rules_cmd.add_argument("--paper", action="store_true", help="use the paper rules")
    rules_cmd.add_argument(
        "--print", action="store_true", help="print the canonical form"
    )
    rules_cmd.set_defaults(func=cmd_rules)

    ddl_cmd = sub.add_parser("ddl", help="emit star-schema DDL")
    ddl_cmd.add_argument("--dialect", choices=DIALECTS, default="generic")
    ddl_cmd.set_defaults(func=cmd_ddl)

    map_cmd = sub.add_parser("map", help="write the session SVG map")
    map_cmd.add_argument("-o", "--output", default="session.svg")
    map_cmd.set_defaults(func=cmd_map)

    query_cmd = sub.add_parser("query", help="run a GeoMDQL query")
    query_cmd.add_argument("q", help="the query text")
    query_cmd.set_defaults(func=cmd_query)

    serve_cmd = sub.add_parser("serve", help="start the web portal")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080)
    serve_cmd.add_argument(
        "--datamart",
        default="sales",
        help="name of the default datamart tenant (an '-alt' twin on the "
        "next seed is registered alongside it)",
    )
    serve_cmd.add_argument(
        "--session-ttl",
        type=float,
        default=1800.0,
        help="idle session time-to-live in seconds",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-fork worker processes (>1 requires --backend sqlite)",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default=None,
        help="state backend (default: REPRO_BACKEND, or in-memory)",
    )
    serve_cmd.add_argument(
        "--state",
        default=None,
        help="sqlite state file path (default: REPRO_STATE, or a temp file)",
    )
    serve_cmd.set_defaults(func=cmd_serve)

    from repro.analysis.cli import add_lint_arguments

    lint_cmd = sub.add_parser(
        "lint", help="run the concurrency/cache-correctness lint suite"
    )
    add_lint_arguments(lint_cmd)
    lint_cmd.set_defaults(func=cmd_lint)

    workload_cmd = sub.add_parser(
        "workload", help="generate / describe / replay synthetic traffic"
    )
    workload_sub = workload_cmd.add_subparsers(dest="action", required=True)

    generate_cmd = workload_sub.add_parser(
        "generate", help="write a deterministic event stream for a tier"
    )
    generate_cmd.add_argument(
        "--tier",
        default="smoke",
        help="scale tier (smoke/small/medium/large)",
    )
    generate_cmd.add_argument(
        "--profile",
        choices=("builtin", "journal"),
        default="builtin",
        help="cohort blueprint: hand-written, or mined from the demo "
        "workload's journal (reverse ETL)",
    )
    generate_cmd.add_argument(
        "--stream-seed",
        type=int,
        default=None,
        help="override the tier's generator seed",
    )
    generate_cmd.add_argument("-o", "--output", default="workload.jsonl")
    generate_cmd.set_defaults(func=cmd_workload)

    describe_cmd = workload_sub.add_parser(
        "describe", help="summarize a stream file"
    )
    describe_cmd.add_argument("stream", help="stream JSONL file")
    describe_cmd.set_defaults(func=cmd_workload)

    replay_cmd = workload_sub.add_parser(
        "replay", help="replay a stream against a fresh matching portal"
    )
    replay_cmd.add_argument("stream", help="stream JSONL file")
    replay_cmd.add_argument(
        "--world-scale",
        choices=("small", "medium", "large"),
        default="small",
        help="world size to build (the stream header's fact multiplier "
        "is applied on top)",
    )
    replay_cmd.add_argument(
        "--mode",
        choices=("serial", "closed", "open"),
        default="closed",
    )
    replay_cmd.add_argument(
        "--actors",
        type=int,
        default=4,
        help="concurrent actors (closed) / sender threads (open)",
    )
    replay_cmd.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="open-loop arrival rate, requests per second",
    )
    replay_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help=">1 replays through a pre-fork worker pool over sqlite",
    )
    replay_cmd.set_defaults(func=cmd_workload)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
