"""Command-line interface: ``python -m repro <command>``.

Small operational commands over the reproduction:

``demo``
    Run the full paper scenario and print the personalized-view report.
``rules``
    Parse + semantically check a PRML rule file (or the built-in paper
    rules with ``--paper``), printing the canonical form.
``ddl``
    Emit the star-schema DDL for the (personalized) GeoMD schema.
``map``
    Write the personalized session SVG map.
``query``
    Run one GeoMDQL query over the personalized view.
``serve``
    Start the web portal on a local port (interactive use only).
``lint``
    Run the concurrency / cache-correctness lint suite against the
    committed baseline (see ``repro.analysis``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.errors import ReproError, PRMLError
from repro.mda import DIALECTS, generate_ddl
from repro.olap import execute, parse_query
from repro.personalization import PersonalizationEngine
from repro.prml import SemanticAnalyzer, parse_rules, print_rule
from repro.viz import render_session_map

__all__ = ["main", "build_parser"]


def _build_engine(seed: int, threshold: int):
    world = generate_world(WorldConfig(seed=seed))
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": threshold},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    return world, star, engine


def _open_session(world, engine):
    profile = build_regional_manager_profile()
    return engine.start_session(profile, location=world.stores[0].location)


def cmd_demo(args: argparse.Namespace) -> int:
    world, star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    print("personalized view:", session.view().stats())
    for outcome in session.outcomes:
        status = f"error: {outcome.error}" if outcome.error else (
            f"actions={outcome.fired_actions} selected={outcome.selected_instances}"
        )
        print(f"  rule {outcome.rule_name}: {status}")
    print()
    print(session.view().cube().by("Store.City").result().format_table())
    session.end()
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    if args.paper:
        sources = "\n".join(ALL_PAPER_RULES.values())
    elif args.file:
        sources = Path(args.file).read_text()
    else:
        sources = sys.stdin.read()
    try:
        rules = parse_rules(sources)
    except PRMLError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 1
    world, _star, engine = _build_engine(args.seed, args.threshold)
    del world
    analyzer = SemanticAnalyzer(
        engine.user_schema,
        engine.geomd_schema,
        engine.geomd_schema,
        engine.parameters,
        known_layers=engine._promised_layers() | {"Airport", "Train"},
    )
    status = 0
    for rule in rules:
        issues = analyzer.analyze(rule)
        marker = "OK " if not issues else "ERR"
        print(f"[{marker}] Rule {rule.name}")
        for issue in issues:
            print(f"      - {issue}")
            status = 1
        if args.print:
            print(print_rule(rule))
            print()
    return status


def cmd_ddl(args: argparse.Namespace) -> int:
    world, _star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    print(generate_ddl(session.view().schema, dialect=args.dialect), end="")
    session.end()
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    world, _star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    svg = render_session_map(session, world)
    Path(args.output).write_text(svg)
    print(f"wrote {args.output}")
    session.end()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    world, star, engine = _build_engine(args.seed, args.threshold)
    session = _open_session(world, engine)
    view = session.view()
    try:
        query = parse_query(args.q, view.schema)
    except ReproError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        session.end()
        return 1
    result = execute(star, query, view.fact_rows if view.is_restricted else None)
    print(result.format_table())
    print(f"({result.fact_rows_matched} of {result.fact_rows_scanned} rows matched)")
    session.end()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - network
    from repro.service import (
        DatamartRegistry,
        InMemorySessionStore,
        PersonalizationService,
    )
    from repro.web import PortalApp
    from repro.web.server import serve

    registry = DatamartRegistry()
    _world, _star, engine = _build_engine(args.seed, args.threshold)
    primary = registry.register(
        args.datamart,
        engine,
        description=f"sales star (seed {args.seed})",
        default=True,
    )
    primary.register_user(build_regional_manager_profile())
    # A second tenant on a differently seeded world demonstrates the
    # multi-datamart routing of POST /api/v1/login {"datamart": ...}.
    _world2, _star2, engine2 = _build_engine(args.seed + 1, args.threshold)
    alt = registry.register(
        f"{args.datamart}-alt",
        engine2,
        description=f"sales star (seed {args.seed + 1})",
    )
    alt.register_user(build_regional_manager_profile())
    service = PersonalizationService(
        registry, session_store=InMemorySessionStore(ttl=args.session_ttl)
    )
    app = PortalApp(service=service)
    print(
        f"serving /api/v1 on http://{args.host}:{args.port} "
        f"(datamarts: {', '.join(registry.names())}; "
        f"session TTL {args.session_ttl:g}s; Ctrl-C stops)"
    )
    serve(app, args.host, args.port)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial data warehouse personalization (EDBT 2010 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--threshold", type=int, default=3, help="Example 5.3 interest threshold"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper scenario").set_defaults(func=cmd_demo)

    rules_cmd = sub.add_parser("rules", help="check PRML rules")
    rules_cmd.add_argument("file", nargs="?", help="rule file (default: stdin)")
    rules_cmd.add_argument("--paper", action="store_true", help="use the paper rules")
    rules_cmd.add_argument(
        "--print", action="store_true", help="print the canonical form"
    )
    rules_cmd.set_defaults(func=cmd_rules)

    ddl_cmd = sub.add_parser("ddl", help="emit star-schema DDL")
    ddl_cmd.add_argument("--dialect", choices=DIALECTS, default="generic")
    ddl_cmd.set_defaults(func=cmd_ddl)

    map_cmd = sub.add_parser("map", help="write the session SVG map")
    map_cmd.add_argument("-o", "--output", default="session.svg")
    map_cmd.set_defaults(func=cmd_map)

    query_cmd = sub.add_parser("query", help="run a GeoMDQL query")
    query_cmd.add_argument("q", help="the query text")
    query_cmd.set_defaults(func=cmd_query)

    serve_cmd = sub.add_parser("serve", help="start the web portal")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080)
    serve_cmd.add_argument(
        "--datamart",
        default="sales",
        help="name of the default datamart tenant (an '-alt' twin on the "
        "next seed is registered alongside it)",
    )
    serve_cmd.add_argument(
        "--session-ttl",
        type=float,
        default=1800.0,
        help="idle session time-to-live in seconds",
    )
    serve_cmd.set_defaults(func=cmd_serve)

    from repro.analysis.cli import add_lint_arguments

    lint_cmd = sub.add_parser(
        "lint", help="run the concurrency/cache-correctness lint suite"
    )
    add_lint_arguments(lint_cmd)
    lint_cmd.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
