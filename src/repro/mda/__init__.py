"""Model-driven logical design (the paper's refs [9], [10], [18]).

Transforms a (personalized) GeoMD conceptual schema into a relational
star-schema DDL script — generic SQL or PostGIS — including geometry
columns for spatial levels/layers and spatial indexes.
"""

from repro.mda.ddl import DIALECTS, generate_ddl

__all__ = ["DIALECTS", "generate_ddl"]
