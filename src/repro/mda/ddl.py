"""GeoMD → relational logical design (the MDA PIM→PSM transformation).

The paper's short-term future work is to "integrate the approach in our
model driven developing framework [9]"; the authors' MDA line ([9], [10])
and Malinowski & Zimányi's guidelines ([18]) derive object-relational
star schemas from the conceptual models.  This module implements that
transformation for the personalized GeoMD schema:

* one table per dimension level, with a surrogate key, the declared
  attributes, a foreign key per roll-up edge — and a typed geometry
  column for spatial levels;
* one table per fact, with foreign keys to every leaf level and one
  column per measure;
* one table per thematic layer, geometry column typed by the layer's
  ``GeometricType``;
* spatial indexes on every geometry column.

Two SQL dialects are provided: ``generic`` (plain SQL, geometry stored as
WKT ``TEXT``) and ``postgis`` (``geometry(Point, ...)`` columns with GiST
indexes) — so the personalized conceptual schema really is "independent
of the target platform" as the paper argues for conceptual design.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.geomd.gtypes_enum import GeometricType
from repro.geomd.schema import GEOMETRY_ATTRIBUTE, GeoMDSchema
from repro.mdm.model import Dimension, Fact, Level, MDSchema

__all__ = ["generate_ddl", "DIALECTS"]

DIALECTS = ("generic", "postgis")

_TYPE_MAP = {
    "String": "VARCHAR(255)",
    "Integer": "INTEGER",
    "Real": "DOUBLE PRECISION",
    "Boolean": "BOOLEAN",
    "Date": "DATE",
}

_POSTGIS_GEOM = {
    GeometricType.POINT: "geometry(Point)",
    GeometricType.LINE: "geometry(LineString)",
    GeometricType.POLYGON: "geometry(Polygon)",
    GeometricType.COLLECTION: "geometry(GeometryCollection)",
}


def _identifier(name: str) -> str:
    """Lower-snake SQL identifier from a model element name."""
    out: list[str] = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0 and (name[i - 1].islower() or name[i - 1].isdigit()):
            out.append("_")
        out.append(ch.lower())
    text = "".join(out).replace(" ", "_").replace("-", "_")
    if not text or not (text[0].isalpha() or text[0] == "_"):
        text = f"t_{text}"
    return text


def _level_table(dimension: Dimension, level: Level) -> str:
    return _identifier(f"{dimension.name}_{level.name}")


def _geometry_column(dialect: str, gtype: GeometricType) -> str:
    if dialect == "postgis":
        return f"{GEOMETRY_ATTRIBUTE} {_POSTGIS_GEOM[gtype]}"
    return f"{GEOMETRY_ATTRIBUTE} TEXT /* WKT, declared {gtype.name} */"


def _spatial_index(dialect: str, table: str) -> str:
    if dialect == "postgis":
        return (
            f"CREATE INDEX idx_{table}_geom ON {table} "
            f"USING GIST ({GEOMETRY_ATTRIBUTE});"
        )
    return f"CREATE INDEX idx_{table}_geom ON {table} ({GEOMETRY_ATTRIBUTE});"


def _dimension_ddl(
    schema: MDSchema, dimension: Dimension, dialect: str
) -> list[str]:
    statements: list[str] = []
    spatial_levels = getattr(schema, "spatial_levels", {})
    # Emit coarsest levels first so FK targets exist.
    ordered: list[str] = []
    remaining = set(dimension.levels)
    while remaining:
        progressed = False
        for level_name in sorted(remaining):
            parents = {
                coarser
                for h in dimension.hierarchies.values()
                for finer, coarser in h.rollup_edges()
                if finer == level_name
            }
            if parents <= set(ordered):
                ordered.append(level_name)
                remaining.discard(level_name)
                progressed = True
        if not progressed:  # pragma: no cover - dimension ctor forbids cycles
            raise ModelError(
                f"cyclic roll-up structure in dimension {dimension.name!r}"
            )

    for level_name in ordered:
        level = dimension.level(level_name)
        table = _level_table(dimension, level)
        columns = [f"{_identifier(level.name)}_id SERIAL PRIMARY KEY"]
        for attr in level.attributes.values():
            if attr.name == GEOMETRY_ATTRIBUTE:
                continue
            sql_type = _TYPE_MAP.get(attr.type.name, "VARCHAR(255)")
            not_null = " NOT NULL" if attr.name == level.key else ""
            unique = " UNIQUE" if attr.name == level.key else ""
            columns.append(
                f"{_identifier(attr.name)} {sql_type}{not_null}{unique}"
            )
        ref = f"{dimension.name}.{level.name}"
        if ref in spatial_levels:
            columns.append(_geometry_column(dialect, spatial_levels[ref]))
        for h in dimension.hierarchies.values():
            for finer, coarser in h.rollup_edges():
                if finer != level_name:
                    continue
                parent_table = _level_table(dimension, dimension.level(coarser))
                parent_id = f"{_identifier(coarser)}_id"
                columns.append(
                    f"{parent_id} INTEGER NOT NULL "
                    f"REFERENCES {parent_table}({parent_id})"
                )
        body = ",\n  ".join(columns)
        statements.append(f"CREATE TABLE {table} (\n  {body}\n);")
        if ref in spatial_levels:
            statements.append(_spatial_index(dialect, table))
    return statements


def _fact_ddl(schema: MDSchema, fact: Fact, dialect: str) -> list[str]:
    table = _identifier(fact.name)
    columns = [f"{table}_id SERIAL PRIMARY KEY"]
    for dim_name in fact.dimension_names:
        dimension = schema.dimension(dim_name)
        leaf = dimension.leaf_level
        leaf_table = _level_table(dimension, leaf)
        leaf_id = f"{_identifier(leaf.name)}_id"
        columns.append(
            f"{_identifier(dim_name)}_{leaf_id} INTEGER NOT NULL "
            f"REFERENCES {leaf_table}({leaf_id})"
        )
    for measure in fact.measures.values():
        sql_type = _TYPE_MAP[measure.type.name]
        columns.append(f"{_identifier(measure.name)} {sql_type} NOT NULL")
    body = ",\n  ".join(columns)
    statements = [f"CREATE TABLE {table} (\n  {body}\n);"]
    for dim_name in fact.dimension_names:
        dimension = schema.dimension(dim_name)
        leaf_id = f"{_identifier(dim_name)}_{_identifier(dimension.leaf)}_id"
        statements.append(
            f"CREATE INDEX idx_{table}_{_identifier(dim_name)} "
            f"ON {table} ({leaf_id});"
        )
    return statements


def _layer_ddl(schema: GeoMDSchema, dialect: str) -> list[str]:
    statements: list[str] = []
    for layer in schema.layers.values():
        table = _identifier(f"layer_{layer.name}")
        columns = [f"feature_id SERIAL PRIMARY KEY"]
        for attr in layer.attributes.values():
            sql_type = _TYPE_MAP.get(attr.type.name, "VARCHAR(255)")
            suffix = " NOT NULL UNIQUE" if attr.name == "name" else ""
            columns.append(f"{_identifier(attr.name)} {sql_type}{suffix}")
        columns.append(_geometry_column(dialect, layer.geometric_type))
        body = ",\n  ".join(columns)
        statements.append(f"CREATE TABLE {table} (\n  {body}\n);")
        statements.append(_spatial_index(dialect, table))
    return statements


def generate_ddl(schema: MDSchema, dialect: str = "generic") -> str:
    """Generate the full star-schema DDL script for a (Geo)MD schema."""
    if dialect not in DIALECTS:
        raise ModelError(
            f"unknown SQL dialect {dialect!r}; expected one of {DIALECTS}"
        )
    statements: list[str] = [
        f"-- Logical star schema for {schema.name!r} ({dialect} dialect)",
        f"-- Generated by repro.mda (PIM -> PSM transformation)",
    ]
    for dimension in schema.dimensions.values():
        statements.append(f"\n-- Dimension: {dimension.name}")
        statements.extend(_dimension_ddl(schema, dimension, dialect))
    for fact in schema.facts.values():
        statements.append(f"\n-- Fact: {fact.name}")
        statements.extend(_fact_ddl(schema, fact, dialect))
    if isinstance(schema, GeoMDSchema) and schema.layers:
        statements.append("\n-- Thematic layers")
        statements.extend(_layer_ddl(schema, dialect))
    return "\n".join(statements) + "\n"
