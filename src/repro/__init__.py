"""repro — reproduction of *Using Web-based Personalization on Spatial
Data Warehouses* (Glorio, Mazón, Garrigós & Trujillo, EDBT 2010).

Subpackages, bottom-up:

``repro.geometry``
    Planar geometry kernel (ISO/OGC subset): types, WKT, predicates,
    distance/intersection, metrics, spatial indexes.
``repro.uml``
    Minimal MOF/UML metamodel with profiles and stereotypes.
``repro.mdm``
    Multidimensional metamodel (facts, dimensions, Base levels,
    hierarchies) — the profile of Luján-Mora et al. [16].
``repro.geomd``
    Geographic MD extension: spatial levels, thematic layers,
    GeometricTypes, topological constraints.
``repro.storage``
    In-memory star schema: dimension/fact/layer tables.
``repro.olap``
    Spatial OLAP engine: cube queries, navigation, spatial aggregation,
    GeoMDQL-lite.
``repro.sus``
    Spatial-aware user model (the SUS profile of Fig. 3/4).
``repro.prml``
    PRML: lexer, parser, AST (Fig. 5), semantic analysis, evaluator,
    spatial operator runtime.
``repro.personalization``
    The Fig. 1 engine: rule phases, sessions, personalized views.
``repro.web``
    Web portal simulation (login → personalized analysis → logout).
``repro.data``
    Deterministic synthetic worlds and the paper's fixtures/rules.

Quickstart::

    from repro.data import (generate_world, build_sales_star, WorldGeoSource,
                            build_motivating_user_model,
                            build_regional_manager_profile, ALL_PAPER_RULES)
    from repro.personalization import PersonalizationEngine
    from repro.geometry import Point

    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(star, build_motivating_user_model(),
                                   geo_source=WorldGeoSource(world),
                                   parameters={"threshold": 3})
    engine.add_rules(ALL_PAPER_RULES.values())
    profile = build_regional_manager_profile()
    session = engine.start_session(profile, location=Point(0.0, 0.0))
    print(session.view().stats())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
