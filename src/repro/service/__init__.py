"""The personalization *service* layer: transport-independent application
logic behind the versioned ``/api/v1`` web surface.

The seed fused application logic, session state and transport into the
portal class.  This package splits that into reusable parts — typed DTOs
(:mod:`repro.service.dtos`), a pluggable session store with TTL/eviction
(:mod:`repro.service.sessions`), multi-datamart tenancy
(:mod:`repro.service.registry`) and the façade that ties them together
(:mod:`repro.service.facade`) — so any adapter (in-process, stdlib HTTP,
a future async front end) can serve the same personalization API.
"""

from repro.service.dtos import (
    DatamartInfo,
    LayerResult,
    LoginRequest,
    LoginResult,
    LogoutResult,
    PageInfo,
    PageRequest,
    QueryRequest,
    QueryResult,
    RecommendationRequest,
    RecommendationResult,
    RerunResult,
    SelectionRequest,
    SelectionResult,
)
from repro.service.facade import CellSetPayload, PersonalizationService
from repro.service.registry import Datamart, DatamartRegistry
from repro.service.sessions import (
    InMemorySessionStore,
    SessionRecord,
    SessionStore,
)

__all__ = [
    "CellSetPayload",
    "Datamart",
    "DatamartInfo",
    "DatamartRegistry",
    "InMemorySessionStore",
    "LayerResult",
    "LoginRequest",
    "LoginResult",
    "LogoutResult",
    "PageInfo",
    "PageRequest",
    "PersonalizationService",
    "QueryRequest",
    "QueryResult",
    "RecommendationRequest",
    "RecommendationResult",
    "RerunResult",
    "SelectionRequest",
    "SelectionResult",
    "SessionRecord",
    "SessionStore",
]
