"""The :class:`PersonalizationService` façade — the portal's application
logic as a transport-independent, versioned service layer.

Any front end (the stdlib HTTP adapter, the in-process test driver, a
future async adapter) talks to this one class with typed DTOs and gets
either a typed result or a :class:`~repro.errors.ServiceError` carrying
the uniform error envelope.  The service owns:

* tenant resolution through a :class:`~repro.service.registry.DatamartRegistry`
  (login's ``datamart`` field picks the star/engine);
* authentication through a pluggable
  :class:`~repro.service.sessions.SessionStore` (TTL, eviction,
  thread-safety);
* the analysis operations themselves (profile, schema, view, GeoMDQL
  query, spatial-selection events, instance-rule rerun, layer export)
  with ``limit``/``offset`` pagination on list-shaped results;
* a small LRU cache over query *results* keyed on ``(datamart,
  stripped query text, selection fingerprint, as_of)``.  The key carries
  no star generation: each cached payload instead stores the
  *per-dimension generation stamps* its answer depended on (fact,
  schema, the fact's dimensions, the layers its spatial filters read)
  and a hit revalidates those stamps against the live star — so a
  mutation of an unrelated dimension keeps every unaffected entry warm
  instead of evicting the whole tenant.  The selection fingerprint is
  the *content* identity of the session's selection: two sessions of one
  tenant whose personalization landed on the same instances share a
  cache entry, while the datamart name keeps tenants strictly apart.
  ``as_of`` answers are immutable history, cached with empty stamps.
  Cached payload rows are frozen as tuples so a consumer mutating a
  returned row can never poison later hits.  ``query_cache_size=0``
  disables it.
"""

from __future__ import annotations

import threading
from typing import NamedTuple

from repro.analysis import sanitizer as _sanitizer
from repro.concurrency import make_lock
from repro.errors import BadRequestError, PRMLError, QueryError, UnauthorizedError
from repro.geometry import Point
from repro.olap.gmdql import parse_query
from repro.olap.query import execute
from repro.personalization.engine import PersonalizationEngine, PersonalizedSession
from repro.reco import Recommender, WorkloadJournal
from repro.service.dtos import (
    DatamartInfo,
    LayerResult,
    LoginRequest,
    LoginResult,
    LogoutResult,
    PageRequest,
    QueryRequest,
    QueryResult,
    RecommendationRequest,
    RecommendationResult,
    RerunResult,
    SelectionRequest,
    SelectionResult,
)
from repro.service.registry import Datamart, DatamartRegistry
from repro.service.sessions import InMemorySessionStore, SessionRecord, SessionStore

__all__ = ["PersonalizationService", "CellSetPayload"]


def _hit_rate(hits: int, misses: int) -> float | None:
    """Derived cache efficiency, ``None`` before any lookup happened
    (0/0 is "no data", not "0% effective")."""
    total = hits + misses
    if total <= 0:
        return None
    return round(hits / total, 4)


class CellSetPayload(NamedTuple):
    """Pre-pagination query result, the unit the LRU query cache stores.

    Pagination is applied per request on top of a cached payload, so two
    requests differing only in ``limit``/``offset`` share one entry.

    ``rows`` is a tuple of tuples — *frozen*.  The payload is shared by
    every later cache hit (and, with fingerprint keys, by other
    sessions), so handing out references to mutable inner row lists would
    let one consumer's in-place edit silently corrupt every subsequent
    response; :meth:`PersonalizationService._paged_result` materializes
    fresh lists per request instead.

    ``stamps`` records the per-dimension generations this answer was
    computed against, as ``(kind, name, generation)`` triples (kinds:
    ``fact``/``schema``/``member``/``layer``); a cache hit is served only
    while every stamp still matches the live star, so a mutation
    invalidates exactly the entries whose inputs it touched.  As-of
    payloads are immutable history and carry no stamps.
    """

    axes: tuple[str, ...]
    labels: tuple
    rows: tuple[tuple, ...]
    fact_rows_scanned: int
    fact_rows_matched: int
    stamps: tuple = ()


class PersonalizationService:
    """Versioned application façade over registry + session store."""

    def __init__(
        self,
        registry: DatamartRegistry,
        session_store: SessionStore | None = None,
        query_cache_size: int = 256,
        journal: WorkloadJournal | None = None,
        recommender: Recommender | None = None,
        query_cache=None,
    ) -> None:
        # The default stores are env-selected (REPRO_BACKEND): in-heap
        # classes in the default mode, backend-backed two-tier stores
        # over the shared persistent backend with REPRO_BACKEND=sqlite
        # (see repro.cluster.config).  Explicit arguments always win.
        from repro.cluster.config import (
            make_journal,
            make_query_cache,
            make_session_store,
        )

        self.registry = registry
        # `is not None` matters: an empty store has __len__ == 0 and is falsy.
        self.sessions = (
            session_store
            if session_store is not None
            else make_session_store(resolver=self._rehydrate_session)
        )
        # guarded-by: _lock
        self._sessions_started: dict[str, int] = {}
        # guarded-by: _lock
        self._hooked_engines: set[int] = set()
        #: Guards hook registration and the per-tenant counters; engines
        #: themselves are not thread-safe, so logins are serialized per
        #: engine and same-token requests per session record.
        self._lock = make_lock("PersonalizationService._lock")
        # guarded-by: _lock
        self._engine_locks: dict[int, threading.Lock] = {}
        #: Lookups that found an entry whose generation stamps no longer
        #: match the live star; the hit/miss properties reclassify them.
        # guarded-by: _lock
        self._stale_query_hits = 0
        if query_cache_size < 0:
            raise ValueError("query_cache_size must be >= 0")
        self.query_cache_size = query_cache_size
        #: ThreadSafeLRU or its backend-backed equivalent (same get/put/
        #: clear/hits/misses surface, entries shared across workers).
        self._query_cache = (
            query_cache
            if query_cache is not None
            else make_query_cache(query_cache_size)
        )
        #: Workload journal + recommender: every query, selection report
        #: and layer fetch is journaled per (datamart, user) — unless the
        #: login opted out — and the recommender ranks suggestions from
        #: similar users' journals (see :mod:`repro.reco`).
        self.journal = journal if journal is not None else make_journal()
        self.recommender = (
            recommender if recommender is not None else Recommender(self.journal)
        )

    # -- session lifecycle --------------------------------------------------------

    def login(self, request: LoginRequest) -> LoginResult:
        """Open a personalized session on the requested datamart."""
        datamart = self.registry.get(request.datamart)
        profile = datamart.profile(request.user)
        self._ensure_hooked(datamart)
        with self._engine_lock(datamart.engine):
            session = datamart.engine.start_session(
                profile, location=request.location
            )
        # The journaling opt-out travels with the session record, not the
        # user: a later login may opt back in and resume the history.  The
        # login location rides along so a persistent store can rebuild
        # the session in another process (see _rehydrate_session) —
        # meta values must stay JSON-safe for exactly that reason.
        record = self.sessions.put(
            session,
            datamart=datamart.name,
            user_id=request.user,
            meta={
                "journal": request.journal,
                "location": (
                    [request.location.x, request.location.y]
                    if request.location is not None
                    else None
                ),
            },
        )
        return LoginResult(
            token=record.token,
            user=request.user,
            datamart=datamart.name,
            rules_fired=[o.rule_name for o in session.outcomes],
            view=self._view_stats(session),
            journal=request.journal,
        )

    def logout(self, token: str | None) -> LogoutResult:
        record = self._record(token)
        with record.lock:
            outcomes = record.session.end()
            self.sessions.remove(record.token)
        return LogoutResult(
            ended=True, rules_fired=[o.rule_name for o in outcomes]
        )

    # -- analysis operations ------------------------------------------------------

    def profile(self, token: str | None) -> dict:
        record = self._record(token)
        with record.lock:
            return record.session.profile.to_dict()

    def schema(self, token: str | None) -> dict:
        record = self._record(token)
        with record.lock:
            # The personalized schema is the session context's GeoMD
            # schema (the view only carries a reference to it) — no need
            # to materialize fact rows, and multi-fact stars stay valid.
            return record.session.context.geomd_schema.to_dict()

    def view_stats(self, token: str | None) -> dict:
        record = self._record(token)
        with record.lock:
            return self._view_stats(record.session)

    @staticmethod
    def _view_stats(session) -> dict:
        """Stats of the materialized view(s).

        Single-fact stars (the common case) keep the flat shape; a
        multi-fact star answers with one stats block per fact under
        ``"facts"`` since there is no single unambiguous view.
        """
        facts = session.context.star.schema.facts
        if len(facts) == 1:
            return session.view().stats()
        return {
            "facts": {name: session.view(name).stats() for name in sorted(facts)}
        }

    def query(self, token: str | None, request: QueryRequest) -> QueryResult:
        from repro.storage.snapshot import HistoryError

        record = self._record(token)
        with record.lock:
            session = record.session
            star = session.context.star
            cache_key = None
            if self.query_cache_size > 0:
                selection = session.selection
                cache_key = (
                    record.datamart,
                    # Stripped query text only: internal whitespace can be
                    # significant (string literals), so it is preserved.
                    # The text fully determines the fact, so a hit skips
                    # the parse entirely; malformed queries never populate
                    # the cache and keep raising on every request.
                    request.q.strip(),
                    # Content fingerprint, not the session uid: sessions
                    # of one tenant whose selections hold the same
                    # instances share the entry (and a selection change
                    # changes the fingerprint).  The datamart component
                    # keeps tenants isolated.
                    selection.fingerprint(),
                    # Live and as-of reads share the namespace; the star
                    # generation is deliberately absent — freshness is
                    # the stored payload's stamps, revalidated below.
                    request.as_of,
                )
                payload = self._query_cache.get(cache_key)
                if payload is not None:
                    if request.as_of is not None or self._stamps_current(
                        star, payload.stamps
                    ):
                        # A cache hit is still workload: the journal
                        # observes the same traffic the caches do.  As-of
                        # answers are immutable history — no stamps to
                        # revalidate.
                        self._journal_query(record, request)
                        return self._paged_result(payload, request)
                    # Stale stamps: the raw LRU counted a lookup hit but
                    # nothing was served — reclassified as a miss by the
                    # query_cache_hits/misses properties.
                    with self._lock:
                        self._stale_query_hits += 1
            try:
                query = parse_query(request.q, session.context.geomd_schema)
            except QueryError as exc:
                raise BadRequestError(
                    str(exc), code="query_error", detail={"q": request.q}
                ) from exc
            # The parsed query names the fact, so multi-fact stars
            # materialize the right per-fact view.
            view = session.view(query.fact)
            row_selection = view.fact_rows if view.is_restricted else None
            try:
                cell_set = execute(
                    view.star,
                    query,
                    row_selection,
                    session.engine.metric,
                    as_of=request.as_of,
                )
            except HistoryError as exc:
                raise BadRequestError(
                    str(exc),
                    code="as_of_unavailable",
                    detail={"as_of": request.as_of},
                ) from exc
            payload = CellSetPayload(
                axes=tuple(str(a) for a in cell_set.axes),
                labels=tuple(cell_set.labels),
                # to_rows() already yields tuples; freezing the outer
                # sequence too makes the whole cached payload immutable.
                rows=tuple(cell_set.to_rows()),
                fact_rows_scanned=cell_set.fact_rows_scanned,
                fact_rows_matched=cell_set.fact_rows_matched,
                stamps=(
                    ()
                    if request.as_of is not None
                    else self._generation_stamps(star, query)
                ),
            )
            if cache_key is not None:
                # query_cache_size is runtime-mutable; trim to its live value.
                self._query_cache.put(
                    cache_key, payload, max_size=self.query_cache_size
                )
            self._journal_query(record, request)
        return self._paged_result(payload, request)

    @staticmethod
    def _generation_stamps(star, query) -> tuple:
        """The ``(kind, name, generation)`` triples a live answer to
        ``query`` depends on: the fact table's rows, the schema layout,
        the member state of each of the fact's dimensions, and the
        feature state of every layer the query's spatial filters read.
        Mutations elsewhere (other facts, other dimensions, other
        layers) leave every stamp intact and the entry stays warm.
        """
        from repro.olap.query import LayerRef, SpatialFilter

        stamps = [
            ("fact", query.fact, star.fact_generation(query.fact)),
            ("schema", "", star.schema_generation),
        ]
        fact = star.fact_table(query.fact).fact
        for dimension in fact.dimension_names:
            stamps.append(
                ("member", dimension, star.member_generation(dimension))
            )
        layers = set()
        for flt in query.where:
            if isinstance(flt, SpatialFilter) and isinstance(
                flt.target, LayerRef
            ):
                layers.add(flt.target.name)
        for name in sorted(layers):
            stamps.append(("layer", name, star.feature_generation(name)))
        return tuple(stamps)

    @staticmethod
    def _stamps_current(star, stamps) -> bool:
        """Whether every recorded generation stamp still matches the live
        star — the read half of the stamped-value cache protocol."""
        if not stamps:
            # A stampless live payload (e.g. decoded from an older
            # process that recorded none) carries no proof of freshness.
            return False
        for kind, name, generation in stamps:
            if kind == "fact":
                live = star.fact_generation(name)
            elif kind == "schema":
                live = star.schema_generation
            elif kind == "member":
                live = star.member_generation(name)
            elif kind == "layer":
                live = star.feature_generation(name)
            else:
                return False
            if live != generation:
                return False
        return True

    def _paged_result(
        self, payload: CellSetPayload, request: QueryRequest
    ) -> QueryResult:
        rows, page = request.page.apply(payload.rows)
        return QueryResult(
            axes=list(payload.axes),
            labels=list(payload.labels),
            # Fresh lists per request: the cached payload rows are frozen
            # tuples, and no two responses may share mutable state.
            rows=[list(row) for row in rows],
            fact_rows_scanned=payload.fact_rows_scanned,
            fact_rows_matched=payload.fact_rows_matched,
            page=page,
        )

    @property
    def query_cache_hits(self) -> int:
        """Lookups served from cache: raw store hits minus the lookups
        whose stamps had gone stale (those served nothing)."""
        with self._lock:
            stale = self._stale_query_hits
        return self._query_cache.hits - stale

    @property
    def query_cache_misses(self) -> int:
        with self._lock:
            stale = self._stale_query_hits
        return self._query_cache.misses + stale

    def record_selection(
        self, token: str | None, request: SelectionRequest
    ) -> SelectionResult:
        record = self._record(token)
        with record.lock:
            try:
                outcomes = record.session.record_spatial_selection(
                    request.target, request.condition
                )
            except PRMLError as exc:
                raise BadRequestError(
                    str(exc),
                    code="bad_selection",
                    detail={
                        "target": request.target,
                        "condition": request.condition,
                    },
                ) from exc
            # Log the accepted report on the record so a persistent
            # store can replay it: a rehydrated session re-fires the
            # same acquisition rules and lands on the same selection
            # content (selections are additive, so replay is idempotent
            # in content).  Bounded by the session TTL, not by count.
            record.meta.setdefault("selections", []).append(
                [request.target, request.condition]
            )
            self.sessions.persist(record)
            if self._journal_enabled(record):
                # Snapshot the member selection *after* acquisition rules
                # fired: this is the spatial footprint similarity is
                # computed from.
                self.journal.record_selection(
                    record.datamart,
                    record.user_id,
                    request.target,
                    request.condition,
                    members=record.session.selection.member_triples(),
                )
            return SelectionResult(
                matched_rules=[o.rule_name for o in outcomes],
                profile=record.session.profile.to_dict(),
            )

    def rerun_instance_rules(self, token: str | None) -> RerunResult:
        record = self._record(token)
        with record.lock:
            outcomes = record.session.rerun_instance_rules()
            return RerunResult(
                rules_fired=[o.rule_name for o in outcomes],
                view=self._view_stats(record.session),
            )

    def layer(
        self, token: str | None, name: str, page: PageRequest | None = None
    ) -> LayerResult:
        record = self._record(token)
        with record.lock:
            session = record.session
            schema = session.context.geomd_schema
            if name not in schema.layers:
                from repro.errors import NotFoundError

                raise NotFoundError(
                    f"no layer {name!r} in the personalized schema",
                    code="unknown_layer",
                    detail={"available": sorted(schema.layers)},
                )
            table = session.engine.star.layer_table(name)
            features, page_info = (page or PageRequest()).apply(
                list(table.features())
            )
            self._journal_layer(record, name)
        return LayerResult(
            layer=name,
            geometric_type=schema.layers[name].geometric_type.name,
            features=[
                {
                    "name": f.name,
                    "wkt": f.geometry.wkt,
                    "attributes": f.attributes,
                }
                for f in features
            ],
            page=page_info,
        )

    # -- recommendations ----------------------------------------------------------

    def recommendations(
        self,
        token: str | None,
        kind: str,
        request: RecommendationRequest | None = None,
    ) -> RecommendationResult:
        """Ranked suggestions (queries/layers/members) for this session's
        user, mined from the journals of the most similar users.

        Layer suggestions are confined to the session's *personalized*
        schema and member suggestions exclude the session's live
        selection, so a recommendation can never surface data the target
        user's own personalization would not grant; recommended queries
        execute through :meth:`query` against the user's own view.
        """
        request = request or RecommendationRequest()
        # Auth first, like every other session endpoint: an anonymous
        # client must get the same 401 for valid and invalid kinds.
        record = self._record(token)
        if kind not in ("queries", "layers", "members"):
            from repro.errors import NotFoundError

            raise NotFoundError(
                f"no recommendation kind {kind!r}",
                code="unknown_recommendation_kind",
                detail={"available": ["queries", "layers", "members"]},
            )
        with record.lock:
            session = record.session
            star = session.context.star
            selection = session.selection
            items, neighbours = self.recommender.recommend(
                record.datamart,
                record.user_id,
                star,
                kind,
                k=request.k,
                allowed_layers=set(session.context.geomd_schema.layers)
                if kind == "layers"
                else None,
                exclude_members=selection.member_triples()
                if kind == "members"
                else (),
                # The memo key must cover the session state consulted
                # above — the selection's (uid, generation) is exactly the
                # cache-identity protocol the view memo and query cache use.
                context_key=(selection.uid, selection.generation),
            )
        paged, page_info = request.page.apply(
            [recommendation.to_dict() for recommendation in items]
        )
        return RecommendationResult(
            kind=kind,
            user=record.user_id,
            datamart=record.datamart,
            items=paged,
            similar_users=[
                {"user": user, "score": round(score, 6)}
                for user, score in neighbours
            ],
            page=page_info,
        )

    # -- introspection -----------------------------------------------------------

    def health(self) -> dict:
        """Unauthenticated liveness/introspection snapshot (LB probes)."""
        query_cache = {
            "size": len(self._query_cache),
            "max_size": self.query_cache_size,
            "hits": self.query_cache_hits,
            "misses": self.query_cache_misses,
            "hit_rate": _hit_rate(
                self.query_cache_hits, self.query_cache_misses
            ),
        }
        with self._lock:
            sessions_started = dict(self._sessions_started)
        sanitizer = _sanitizer.current()
        return {
            "status": "ok",
            "datamarts": [
                {
                    "name": dm.name,
                    "sessions_started": sessions_started.get(dm.name, 0),
                    "star_generation": dm.engine.star.generation,
                    # Shared materialized-view store counters (None when
                    # the tenant's engine runs with view_store_size=0).
                    "view_store": (
                        self._view_store_stats(dm.engine.view_store)
                        if dm.engine.view_store is not None
                        else None
                    ),
                    # The mutation pathway: per-kind log counters,
                    # retained-generation window, as-of history stats,
                    # and the patched-vs-rebuilt split of the view tier.
                    "mutations": self._mutation_stats(dm.engine),
                }
                for dm in sorted(self.registry, key=lambda d: d.name)
            ],
            "active_sessions": len(self.sessions),
            "query_cache": query_cache,
            # Which state tier this process runs on: backend kind, rows
            # per store, and the pool worker id when forked (None
            # single-process) — the per-backend stats the cluster mode's
            # load balancer and its tests read.
            "state_backend": self._state_backend_stats(),
            "journal": self.journal.stats(),
            "recommender": self._recommender_stats(),
            # Lock acquisition/contention counters and the lock-order
            # graph summary, when the sanitizer is running
            # (REPRO_SANITIZE=1); null in normal operation.
            "locks": sanitizer.stats() if sanitizer is not None else None,
        }

    def datamarts(self) -> list[DatamartInfo]:
        """Describe every tenant this service hosts."""
        with self._lock:
            sessions_started = dict(self._sessions_started)
        return [
            DatamartInfo(
                name=dm.name,
                description=dm.description,
                default=dm.name == self.registry.default_name,
                users=len(dm.profiles),
                rules=len(dm.engine.rules),
                sessions_started=sessions_started.get(dm.name, 0),
            )
            for dm in sorted(self.registry, key=lambda d: d.name)
        ]

    def sessions_started(self, datamart: str) -> int:
        with self._lock:
            return self._sessions_started.get(datamart, 0)

    @staticmethod
    def _view_store_stats(view_store) -> dict:
        """View-store counters plus the derived ``hit_rate`` — health
        consumers (the workload metrics collector, dashboards) read the
        rate instead of re-deriving it from the raw counters."""
        stats = view_store.stats()
        stats["hit_rate"] = _hit_rate(stats["hits"], stats["misses"])
        return stats

    def _recommender_stats(self) -> dict:
        stats = self.recommender.stats()
        stats["memo_hit_rate"] = _hit_rate(
            stats["memo_hits"], stats["memo_misses"]
        )
        return stats

    @staticmethod
    def _mutation_stats(engine: PersonalizationEngine) -> dict:
        """The per-tenant ``mutations`` health block: the star's mutation
        log (per-kind counts, length, retained-generation window), the
        as-of history tier, and how often the view store patched or
        carried entries through mutations instead of rebuilding."""
        star = engine.star
        stats = star.mutation_log.stats()
        history = star.history
        stats["history"] = history.stats() if history is not None else None
        view_store = engine.view_store
        if view_store is not None:
            view_stats = view_store.stats()
            stats["view_patches"] = (
                view_stats["patches"] + view_stats["carries"]
            )
            stats["view_rebuilds"] = view_stats["builds"]
            stats["view_invalidations"] = view_stats["invalidations"]
        return stats

    def _state_backend_stats(self) -> dict:
        """The health block for the state tier (see health())."""
        from repro.cluster.config import state_health, worker_id

        backend = getattr(self.sessions, "backend", None)
        if backend is not None:
            # The session store names the backend this service actually
            # runs on (a pool worker's explicitly wired backend may not
            # be the env-selected shared one).
            stats = backend.stats()
            stats["worker_id"] = worker_id()
            if hasattr(self.sessions, "stats"):
                stats["sessions"] = self.sessions.stats()
            return stats
        return state_health()

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _journal_enabled(record: SessionRecord) -> bool:
        return bool(record.meta.get("journal", True))

    def _journal_query(self, record: SessionRecord, request: QueryRequest) -> None:
        if self._journal_enabled(record):
            self.journal.record_query(
                record.datamart, record.user_id, request.q
            )

    def _journal_layer(self, record: SessionRecord, name: str) -> None:
        if self._journal_enabled(record):
            self.journal.record_layer(record.datamart, record.user_id, name)

    def _rehydrate_session(self, datamart_name: str, user_id: str, meta: dict):
        """Rebuild a live session for a persisted record (another worker
        issued the token, or this worker spilled the live session).

        A login-equivalent engine call — SessionStart rules fire against
        the user's profile and login location — followed by a replay of
        the selection reports the record logged, so the rehydrated
        session's selection *content* (and therefore its fingerprint,
        its shared view and its query-cache keys) matches the original.
        """
        datamart = self.registry.get(datamart_name)
        profile = datamart.profile(user_id)
        self._ensure_hooked(datamart)
        coordinates = meta.get("location")
        location = (
            Point(coordinates[0], coordinates[1])
            if isinstance(coordinates, (list, tuple)) and len(coordinates) == 2
            else None
        )
        with self._engine_lock(datamart.engine):
            session = datamart.engine.start_session(profile, location=location)
        for report in meta.get("selections", ()):
            if isinstance(report, (list, tuple)) and len(report) == 2:
                session.record_spatial_selection(report[0], report[1])
        return session

    def _record(self, token: str | None) -> SessionRecord:
        if token is None:
            raise UnauthorizedError(
                "missing session token; POST /api/v1/login first",
                code="missing_token",
            )
        record = self.sessions.get(token)
        session = record.session
        if isinstance(session, PersonalizedSession) and session.closed:
            self.sessions.remove(record.token)
            raise UnauthorizedError(
                "session already ended", code="invalid_session"
            )
        return record

    def _engine_lock(self, engine: PersonalizationEngine) -> threading.Lock:
        """One lock per engine: start_session mutates shared engine state."""
        with self._lock:
            return self._engine_locks.setdefault(id(engine), threading.Lock())

    def _ensure_hooked(self, datamart: Datamart) -> None:
        """Attach a session-start hook to count sessions per tenant."""
        engine: PersonalizationEngine = datamart.engine
        name = datamart.name

        def _count(_session: PersonalizedSession) -> None:
            with self._lock:
                self._sessions_started[name] = (
                    self._sessions_started.get(name, 0) + 1
                )

        with self._lock:
            if id(engine) in self._hooked_engines:
                return
            engine.add_session_hook(_count)
            self._hooked_engines.add(id(engine))
