"""Typed request/response DTOs for the personalization service.

Every ``/api/v1`` endpoint speaks one of these dataclasses instead of a
bare dict: requests are parsed from untrusted JSON bodies/query strings
with :meth:`from_body`-style constructors that raise
:class:`~repro.errors.BadRequestError` on invalid input, and responses
serialize through ``to_dict`` so the wire shape is defined in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import BadRequestError
from repro.geometry import Point

__all__ = [
    "PageRequest",
    "PageInfo",
    "LoginRequest",
    "LoginResult",
    "LogoutResult",
    "QueryRequest",
    "QueryResult",
    "RecommendationRequest",
    "RecommendationResult",
    "SelectionRequest",
    "SelectionResult",
    "RerunResult",
    "LayerResult",
    "DatamartInfo",
]


def _non_negative_int(value: object, name: str) -> int:
    """Coerce a body/query value (int or numeric string) to an int >= 0.

    The shared validation helper behind every paginated endpoint (layers,
    query rows, recommendations): a negative, boolean, fractional or
    non-numeric value raises a 400 with the ``invalid_request`` code
    instead of leaking as a 500.
    """
    if isinstance(value, bool) or (
        isinstance(value, float) and not value.is_integer()
    ):
        raise BadRequestError(
            f"{name!r} must be a non-negative integer, got {value!r}",
            code="invalid_request",
        )
    try:
        number = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise BadRequestError(
            f"{name!r} must be a non-negative integer, got {value!r}",
            code="invalid_request",
        ) from None
    if number < 0:
        raise BadRequestError(
            f"{name!r} must be >= 0, got {number}", code="invalid_request"
        )
    return number


@dataclass(frozen=True)
class PageRequest:
    """``limit``/``offset`` pagination window (limit ``None`` = no cap)."""

    limit: int | None = None
    offset: int = 0

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "PageRequest":
        limit_raw = data.get("limit")
        offset_raw = data.get("offset")
        limit = None if limit_raw is None else _non_negative_int(limit_raw, "limit")
        offset = 0 if offset_raw is None else _non_negative_int(offset_raw, "offset")
        return cls(limit=limit, offset=offset)

    def apply(self, items: Sequence) -> tuple[list, "PageInfo"]:
        """Slice ``items`` to this window and describe the result."""
        total = len(items)
        stop = total if self.limit is None else self.offset + self.limit
        window = list(items[self.offset : stop])
        return window, PageInfo(
            total=total,
            offset=self.offset,
            limit=self.limit,
            returned=len(window),
        )


@dataclass(frozen=True)
class PageInfo:
    """What :meth:`PageRequest.apply` actually returned."""

    total: int
    offset: int
    limit: int | None
    returned: int

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "returned": self.returned,
        }


@dataclass(frozen=True)
class LoginRequest:
    """``journal=False`` opts the session out of workload journaling (the
    user's requests then never feed the recommendation subsystem)."""

    user: str
    datamart: str | None = None
    location: Point | None = None
    journal: bool = True

    @classmethod
    def from_body(cls, body: Mapping[str, object]) -> "LoginRequest":
        user = body.get("user")
        if not user or not isinstance(user, str):
            raise BadRequestError("login requires a 'user' field")
        datamart = body.get("datamart")
        if datamart is not None and not isinstance(datamart, str):
            raise BadRequestError("'datamart' must be a string")
        journal = body.get("journal", True)
        if not isinstance(journal, bool):
            raise BadRequestError("'journal' must be a boolean")
        location = None
        raw_location = body.get("location")
        if raw_location is not None:
            if (
                not isinstance(raw_location, (list, tuple))
                or len(raw_location) != 2
            ):
                raise BadRequestError("'location' must be [x, y]")
            try:
                location = Point(float(raw_location[0]), float(raw_location[1]))
            except (TypeError, ValueError):
                raise BadRequestError(
                    "'location' coordinates must be numbers"
                ) from None
        return cls(
            user=user, datamart=datamart, location=location, journal=journal
        )


@dataclass(frozen=True)
class LoginResult:
    token: str
    user: str
    datamart: str
    rules_fired: list[str]
    view: dict
    journal: bool = True

    def to_dict(self) -> dict:
        return {
            "token": self.token,
            "user": self.user,
            "datamart": self.datamart,
            "rules_fired": list(self.rules_fired),
            "view": dict(self.view),
            "journal": self.journal,
        }


@dataclass(frozen=True)
class LogoutResult:
    ended: bool
    rules_fired: list[str]

    def to_dict(self) -> dict:
        return {"ended": self.ended, "rules_fired": list(self.rules_fired)}


@dataclass(frozen=True)
class QueryRequest:
    q: str
    page: PageRequest = field(default_factory=PageRequest)
    #: As-of-generation read: answer against the star as it stood at this
    #: generation (``None`` = live).  Validated like every pagination
    #: field; availability (checkpoint + contiguous log) is the façade's
    #: concern, not the DTO's.
    as_of: int | None = None

    @classmethod
    def from_body(
        cls,
        body: Mapping[str, object],
        query: Mapping[str, object] | None = None,
    ) -> "QueryRequest":
        text = body.get("q")
        if not text or not isinstance(text, str):
            raise BadRequestError("query requires a 'q' field")
        # ``as_of`` reads from the body first, then the URL query string
        # (``?as_of=g``) — the body is the canonical request document,
        # the query param the curl-friendly spelling.
        as_of_raw = body.get("as_of")
        if as_of_raw is None and query is not None:
            as_of_raw = query.get("as_of")
        as_of = (
            None if as_of_raw is None else _non_negative_int(as_of_raw, "as_of")
        )
        return cls(q=text, page=PageRequest.from_mapping(body), as_of=as_of)


@dataclass(frozen=True)
class QueryResult:
    axes: list[str]
    labels: list
    rows: list[list]
    fact_rows_scanned: int
    fact_rows_matched: int
    page: PageInfo

    def to_dict(self) -> dict:
        return {
            "axes": list(self.axes),
            "labels": list(self.labels),
            "rows": [list(row) for row in self.rows],
            "fact_rows_scanned": self.fact_rows_scanned,
            "fact_rows_matched": self.fact_rows_matched,
            "page": self.page.to_dict(),
        }


@dataclass(frozen=True)
class SelectionRequest:
    target: str
    condition: str

    @classmethod
    def from_body(cls, body: Mapping[str, object]) -> "SelectionRequest":
        target = body.get("target")
        condition = body.get("condition")
        if not target or not condition:
            raise BadRequestError("selection requires 'target' and 'condition'")
        if not isinstance(target, str) or not isinstance(condition, str):
            raise BadRequestError("'target' and 'condition' must be strings")
        return cls(target=target, condition=condition)


@dataclass(frozen=True)
class SelectionResult:
    matched_rules: list[str]
    profile: dict

    def to_dict(self) -> dict:
        return {
            "matched_rules": list(self.matched_rules),
            "profile": dict(self.profile),
        }


@dataclass(frozen=True)
class RerunResult:
    rules_fired: list[str]
    view: dict

    def to_dict(self) -> dict:
        return {"rules_fired": list(self.rules_fired), "view": dict(self.view)}


@dataclass(frozen=True)
class LayerResult:
    layer: str
    geometric_type: str
    features: list[dict]
    page: PageInfo

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "geometric_type": self.geometric_type,
            "features": list(self.features),
            "page": self.page.to_dict(),
        }


@dataclass(frozen=True)
class RecommendationRequest:
    """Paging plus the neighbourhood size for a recommendation call."""

    k: int | None = None
    page: PageRequest = field(default_factory=PageRequest)

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "RecommendationRequest":
        k_raw = data.get("k")
        k = None
        if k_raw is not None:
            k = _non_negative_int(k_raw, "k")
            if k < 1:
                raise BadRequestError(
                    "'k' must be >= 1", code="invalid_request"
                )
        return cls(k=k, page=PageRequest.from_mapping(data))


@dataclass(frozen=True)
class RecommendationResult:
    """Ranked suggestions for one user plus the peers they came from."""

    kind: str
    user: str
    datamart: str
    items: list[dict]
    similar_users: list[dict]
    page: PageInfo

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "user": self.user,
            "datamart": self.datamart,
            "items": [dict(item) for item in self.items],
            "similar_users": [dict(peer) for peer in self.similar_users],
            "page": self.page.to_dict(),
        }


@dataclass(frozen=True)
class DatamartInfo:
    name: str
    description: str
    default: bool
    users: int
    rules: int
    sessions_started: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "default": self.default,
            "users": self.users,
            "rules": self.rules,
            "sessions_started": self.sessions_started,
        }
