"""Pluggable session storage for the personalization service.

The portal used to keep ``{token: session}`` in a bare dict: tokens never
expired, memory grew without bound, and concurrent requests from the
threaded stdlib adapter raced on the dict.  :class:`SessionStore` is the
abstraction the service programs against; :class:`InMemorySessionStore`
is the production-shaped default — opaque random tokens, idle-TTL expiry,
LRU eviction at ``max_sessions``, and a lock around every mutation.

Expired or evicted analysis sessions are *ended* (SessionEnd rules fire,
the profile session closes) on a best-effort basis, mirroring what an
explicit logout would have done.
"""

from __future__ import annotations

import secrets
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator

from repro.concurrency import make_lock
from repro.errors import UnauthorizedError

__all__ = ["SessionRecord", "SessionStore", "InMemorySessionStore"]


@dataclass
class SessionRecord:
    """One live analysis session plus its service-level bookkeeping.

    ``lock`` serializes operations *within* one session: the engine's
    session/profile objects are not thread-safe, so concurrent requests
    carrying the same token take this lock in the service layer.
    """

    token: str
    session: object  # PersonalizedSession (duck-typed: .end(), .closed)
    datamart: str
    user_id: str
    created_at: float
    last_access: float
    meta: dict = field(default_factory=dict)
    lock: threading.Lock = field(
        default_factory=partial(make_lock, "SessionRecord.lock")
    )


class SessionStore(ABC):
    """Token -> session mapping with an authentication contract.

    ``get`` raises :class:`~repro.errors.UnauthorizedError` (code
    ``invalid_session`` or ``session_expired``) instead of returning a
    sentinel, so every caller produces the same structured 401.
    """

    @abstractmethod
    def put(
        self,
        session: object,
        *,
        datamart: str,
        user_id: str,
        meta: dict | None = None,
    ) -> SessionRecord:
        """Admit a session, returning its record (with a fresh token).

        ``meta`` seeds the record's service-level bookkeeping dict; a
        persistent store serializes it, so values must be JSON-safe.
        """

    @abstractmethod
    def get(self, token: str) -> SessionRecord:
        """Resolve a token, refreshing its idle clock."""

    @abstractmethod
    def remove(self, token: str) -> None:
        """Forget a token (no-op if absent); does not end the session."""

    @abstractmethod
    def purge_expired(self) -> int:
        """Drop (and end) every expired session, returning how many."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[SessionRecord]: ...

    def persist(self, record: SessionRecord) -> None:
        """Flush a record's mutated ``meta`` to durable storage.

        No-op for heap-resident stores; the backend-backed store
        re-encodes the record so meta mutations (journal opt-out,
        selection replay log) survive a worker change.  Call with
        ``record.lock`` held, like any same-token operation.
        """


def _default_token_factory() -> str:
    return f"tok-{secrets.token_urlsafe(12)}"


def _end_quietly(record: SessionRecord) -> None:
    """End an evicted/expired session as logout would, swallowing errors."""
    session = record.session
    try:
        if not getattr(session, "closed", True):
            session.end()
    except Exception:  # noqa: BLE001 - lint-ok: swallowed-error - reclamation must not fail the request
        pass


class InMemorySessionStore(SessionStore):
    """Thread-safe in-process store with idle TTL and LRU eviction.

    ``clock`` and ``token_factory`` are injectable for deterministic
    tests; the defaults are ``time.monotonic`` and a ``secrets``-based
    opaque token.
    """

    def __init__(
        self,
        ttl: float = 1800.0,
        max_sessions: int = 256,
        clock: Callable[[], float] = time.monotonic,
        token_factory: Callable[[], str] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.ttl = ttl
        self.max_sessions = max_sessions
        self._clock = clock
        self._token_factory = token_factory or _default_token_factory
        self._lock = make_lock("InMemorySessionStore._lock")
        #: token -> record, ordered oldest-access-first (LRU discipline).
        # guarded-by: _lock
        self._records: OrderedDict[str, SessionRecord] = OrderedDict()

    # -- SessionStore API ---------------------------------------------------------

    def put(
        self,
        session: object,
        *,
        datamart: str,
        user_id: str,
        meta: dict | None = None,
    ) -> SessionRecord:
        now = self._clock()
        ended: list[SessionRecord] = []
        with self._lock:
            ended.extend(self._purge_expired_locked(now))
            while len(self._records) >= self.max_sessions:
                _token, evicted = self._records.popitem(last=False)
                ended.append(evicted)
            token = self._token_factory()
            while token in self._records:  # collision paranoia
                token = self._token_factory()
            record = SessionRecord(
                token=token,
                session=session,
                datamart=datamart,
                user_id=user_id,
                created_at=now,
                last_access=now,
                meta=dict(meta or {}),
            )
            self._records[token] = record
        for stale in ended:
            _end_quietly(stale)
        return record

    def get(self, token: str) -> SessionRecord:
        now = self._clock()
        with self._lock:
            record = self._records.get(token)
            if record is None:
                raise UnauthorizedError(
                    "unknown or logged-out session token",
                    code="invalid_session",
                )
            if now - record.last_access > self.ttl:
                del self._records[token]
                expired: SessionRecord | None = record
            else:
                record.last_access = now
                self._records.move_to_end(token)
                expired = None
        if expired is not None:
            _end_quietly(expired)
            raise UnauthorizedError(
                "session expired; POST /api/v1/login again",
                code="session_expired",
                detail={"ttl": self.ttl},
            )
        return record

    def remove(self, token: str) -> None:
        with self._lock:
            self._records.pop(token, None)

    def purge_expired(self) -> int:
        now = self._clock()
        with self._lock:
            ended = self._purge_expired_locked(now)
        for record in ended:
            _end_quietly(record)
        return len(ended)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[SessionRecord]:
        with self._lock:
            return iter(list(self._records.values()))

    # -- internals ---------------------------------------------------------------

    def _purge_expired_locked(self, now: float) -> list[SessionRecord]:  # guarded-by-caller: _lock
        stale = [
            token
            for token, record in self._records.items()
            if now - record.last_access > self.ttl
        ]
        return [self._records.pop(token) for token in stale]
