"""Multi-datamart tenancy: named stars/engines behind one service.

The seed portal was welded to exactly one
:class:`~repro.personalization.engine.PersonalizationEngine` over exactly
one star.  A :class:`DatamartRegistry` hosts many named datamarts — each
an engine plus the user profiles allowed to open sessions on it — so a
single service deployment can serve several analysis scenarios and login
picks the tenant (``{"datamart": "sales-eu"}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BadRequestError, NotFoundError
from repro.personalization.engine import PersonalizationEngine
from repro.sus.model import UserProfile

__all__ = ["Datamart", "DatamartRegistry"]


@dataclass
class Datamart:
    """One tenant: a personalization engine plus its known users."""

    name: str
    engine: PersonalizationEngine
    description: str = ""
    profiles: dict[str, UserProfile] = field(default_factory=dict)

    def register_user(self, profile: UserProfile) -> None:
        """Make a profile known to this datamart (the paper gathers user
        data from requirements before runtime)."""
        self.profiles[profile.user_id] = profile

    def profile(self, user_id: str) -> UserProfile:
        profile = self.profiles.get(user_id)
        if profile is None:
            raise NotFoundError(
                f"unknown user {user_id!r} in datamart {self.name!r}",
                code="unknown_user",
            )
        return profile


class DatamartRegistry:
    """Name -> :class:`Datamart` with a designated default tenant."""

    def __init__(self) -> None:
        self._datamarts: dict[str, Datamart] = {}
        self._default: str | None = None

    def register(
        self,
        name: str,
        engine: PersonalizationEngine,
        *,
        description: str = "",
        default: bool = False,
    ) -> Datamart:
        """Add a datamart; the first registered one becomes the default
        unless a later registration claims ``default=True``."""
        if not name:
            raise BadRequestError("datamart name must be non-empty")
        if name in self._datamarts:
            raise BadRequestError(
                f"duplicate datamart {name!r}", code="duplicate_datamart"
            )
        datamart = Datamart(name=name, engine=engine, description=description)
        self._datamarts[name] = datamart
        if default or self._default is None:
            self._default = name
        return datamart

    def get(self, name: str | None = None) -> Datamart:
        """Resolve a datamart by name (``None`` -> the default tenant)."""
        if name is None:
            if self._default is None:
                raise NotFoundError(
                    "no datamarts registered", code="unknown_datamart"
                )
            return self._datamarts[self._default]
        datamart = self._datamarts.get(name)
        if datamart is None:
            raise NotFoundError(
                f"unknown datamart {name!r} (available: "
                f"{sorted(self._datamarts) or 'none'})",
                code="unknown_datamart",
            )
        return datamart

    @property
    def default_name(self) -> str | None:
        return self._default

    def names(self) -> list[str]:
        return sorted(self._datamarts)

    def __len__(self) -> int:
        return len(self._datamarts)

    def __contains__(self, name: object) -> bool:
        return name in self._datamarts

    def __iter__(self):
        return iter(self._datamarts.values())
