"""A small thread-safe LRU map with hit/miss accounting.

The cache hierarchy grew three hand-rolled copies of the same pattern —
lock-guarded :class:`~collections.OrderedDict`, ``move_to_end`` on
access, ``popitem(last=False)`` eviction, hit/miss counters — in the
service query cache, the recommendation memo and the spatial-profile
cache.  This is that pattern, once.

The maximum size may be overridden per :meth:`put` because some owners
(the service query cache) expose their size as a runtime-mutable
attribute; eviction always trims to the effective bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.concurrency import make_lock

__all__ = ["ThreadSafeLRU"]


class ThreadSafeLRU:
    """Bounded ``key -> value`` map with LRU eviction, safe across threads."""

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = max_size
        self._lock = make_lock("ThreadSafeLRU._lock")
        # guarded-by: _lock
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> object | None:
        """The cached value (refreshed as most-recent), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(
        self, key: Hashable, value: object, max_size: int | None = None
    ) -> None:
        """Store a value, evicting least-recently-used entries beyond the
        bound (``max_size`` overrides the constructor's for this call)."""
        bound = self.max_size if max_size is None else max_size
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > bound:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
