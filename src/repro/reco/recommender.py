"""Ranked recommendations from the journals of similar users.

For a target ``(datamart, user)`` the recommender:

1. builds every journaled user's :class:`~repro.reco.similarity.SpatialProfile`
   from the workload journal and the tenant's star;
2. ranks the other users by
   :func:`~repro.reco.similarity.user_similarity` and keeps the top-k
   with nonzero similarity;
3. collects candidates of the requested kind from those users' journals —
   GeoMDQL query texts, fetched layers, or selected dimension members —
   excluding everything the target user already ran/fetched/selected;
4. scores each candidate by the summed similarity of its supporters, so
   an item shared by several close peers outranks one from a single
   distant user.

Results are memoized under the cache hierarchy's invalidation protocol:
the key carries the tenant's journal generation and star *metadata*
generation (members/features/schema — suggestions never read fact rows,
so fact appends keep the memo warm) plus a caller-supplied context stamp
(e.g. the requesting session's selection ``(uid, generation)`` and its
visible layers) — any journal append, metadata mutation or selection
change is a miss, and nothing is ever invalidated by hand.  ``memo_size=0`` (or :attr:`Recommender.enable_memo` = False)
disables memoization; the benchmark harness uses that to prove the memo
is transparent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.lru import ThreadSafeLRU
from repro.reco.journal import WorkloadJournal
from repro.reco.similarity import (
    SpatialProfile,
    build_spatial_profile,
    user_similarity,
)
from repro.storage.star import StarSchema

__all__ = ["Recommendation", "Recommender"]

#: Recommendation kinds, mirroring the endpoint variants.
KINDS = ("queries", "layers", "members")


@dataclass(frozen=True)
class Recommendation:
    """One ranked suggestion.

    ``item`` is kind-shaped: ``{"q": ...}`` for queries, ``{"layer":
    ...}`` for layers, ``{"dimension", "level", "key"}`` for members.
    ``supporters`` lists the similar users it came from, and ``score`` is
    the sum of their similarities to the target user.
    """

    kind: str
    item: dict
    score: float
    supporters: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "item": dict(self.item),
            "score": round(self.score, 6),
            "supporters": list(self.supporters),
        }


class Recommender:
    """Similarity-driven recommendations over a :class:`WorkloadJournal`."""

    def __init__(
        self,
        journal: WorkloadJournal,
        *,
        top_k: int = 3,
        hierarchy_weight: float = 0.5,
        memo_size: int = 128,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if memo_size < 0:
            raise ValueError("memo_size must be >= 0")
        self.journal = journal
        self.top_k = top_k
        self.hierarchy_weight = hierarchy_weight
        self.memo_size = memo_size
        #: Transparency switch: ``False`` recomputes on every call.
        self.enable_memo = True
        self._memo = ThreadSafeLRU(memo_size)
        #: Built profiles are pure functions of ``(datamart, user, journal
        #: generation, star metadata generation)``, so one call per
        #: kind (or per target user) reuses them instead of replaying the
        #: journal per call.  Same invalidation protocol as the result memo;
        #: one entry per journaled user is the working set, bounded
        #: generously relative to the result memo.
        self._profiles = ThreadSafeLRU(max(4 * memo_size, 64))

    @property
    def memo_hits(self) -> int:
        return self._memo.hits

    @property
    def memo_misses(self) -> int:
        return self._memo.misses

    # -- similarity ---------------------------------------------------------------

    def _profile(
        self, datamart: str, user_id: str, star: StarSchema
    ) -> SpatialProfile:
        if not self.enable_memo or self.memo_size == 0:
            return build_spatial_profile(
                star, self.journal.member_profile(datamart, user_id)
            )
        key = (
            datamart,
            user_id,
            self.journal.generation(datamart),
            star.metadata_generation,
        )
        cached = self._profiles.get(key)
        if cached is None:
            cached = build_spatial_profile(
                star, self.journal.member_profile(datamart, user_id)
            )
            self._profiles.put(key, cached)
        return cached

    def similar_users(
        self,
        datamart: str,
        user_id: str,
        star: StarSchema,
        k: int | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k journaled peers by similarity (nonzero only), ranked.

        Ties break on the user id so rankings are deterministic.
        """
        k = self.top_k if k is None else k
        target = self._profile(datamart, user_id, star)
        scored: list[tuple[str, float]] = []
        for other in self.journal.users(datamart):
            if other == user_id:
                continue
            similarity = user_similarity(
                target,
                self._profile(datamart, other, star),
                self.hierarchy_weight,
            )
            if similarity > 0.0:
                scored.append((other, similarity))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    # -- recommendation -----------------------------------------------------------

    def recommend(
        self,
        datamart: str,
        user_id: str,
        star: StarSchema,
        kind: str,
        *,
        k: int | None = None,
        allowed_layers: Iterable[str] | None = None,
        exclude_members: Iterable[tuple[str, str, str]] = (),
        context_key: Hashable = None,
    ) -> tuple[list[Recommendation], list[tuple[str, float]]]:
        """Ranked recommendations plus the similar-user ranking behind them.

        ``allowed_layers`` confines layer suggestions to what the target
        session's personalized schema actually exposes (no leaking
        another user's wider schema); ``exclude_members`` removes the
        target session's own live selection on top of the journaled
        exclusions.  ``context_key`` must capture whatever of that
        session state the caller passed in (the façade uses the
        selection's ``(uid, generation)``) so the memo can never answer
        across contexts.
        """
        if kind not in KINDS:
            raise ValueError(
                f"unknown recommendation kind {kind!r}; expected one of {KINDS}"
            )
        k = self.top_k if k is None else k
        memo_key = None
        if self.enable_memo and self.memo_size > 0:
            memo_key = (
                datamart,
                user_id,
                kind,
                k,
                self.journal.generation(datamart),
                star.metadata_generation,
                None if allowed_layers is None else frozenset(allowed_layers),
                frozenset(exclude_members),
                context_key,
            )
            cached = self._memo.get(memo_key)
            if cached is not None:
                return list(cached[0]), list(cached[1])

        neighbours = self.similar_users(datamart, user_id, star, k)
        if kind == "queries":
            items = self._query_candidates(datamart, user_id, neighbours)
        elif kind == "layers":
            items = self._layer_candidates(
                datamart, user_id, neighbours, allowed_layers
            )
        else:
            items = self._member_candidates(
                datamart, user_id, neighbours, exclude_members
            )
        if memo_key is not None:
            self._memo.put(memo_key, (tuple(items), tuple(neighbours)))
        return items, neighbours

    # -- candidate collection -----------------------------------------------------

    def _ranked(
        self,
        kind: str,
        votes: dict[tuple, tuple[dict, float, list[str]]],
    ) -> list[Recommendation]:
        """Sort candidates by score desc, then by identity for stability."""
        recommendations = [
            Recommendation(
                kind=kind,
                item=item,
                score=score,
                supporters=tuple(sorted(supporters)),
            )
            for item, score, supporters in votes.values()
        ]
        recommendations.sort(key=lambda r: (-r.score, sorted(r.item.items())))
        return recommendations

    def _query_candidates(
        self,
        datamart: str,
        user_id: str,
        neighbours: list[tuple[str, float]],
    ) -> list[Recommendation]:
        already_ran = set(self.journal.queries(datamart, user_id))
        votes: dict[tuple, tuple[dict, float, list[str]]] = {}
        for other, similarity in neighbours:
            for q in self.journal.queries(datamart, other):
                if q in already_ran:
                    continue
                item, score, supporters = votes.get((q,), ({"q": q}, 0.0, []))
                votes[(q,)] = (item, score + similarity, supporters + [other])
        return self._ranked("queries", votes)

    def _layer_candidates(
        self,
        datamart: str,
        user_id: str,
        neighbours: list[tuple[str, float]],
        allowed_layers: Iterable[str] | None,
    ) -> list[Recommendation]:
        fetched = self.journal.layers(datamart, user_id)
        allowed = None if allowed_layers is None else set(allowed_layers)
        votes: dict[tuple, tuple[dict, float, list[str]]] = {}
        for other, similarity in neighbours:
            for layer in self.journal.layers(datamart, other):
                if layer in fetched:
                    continue
                if allowed is not None and layer not in allowed:
                    continue
                item, score, supporters = votes.get(
                    (layer,), ({"layer": layer}, 0.0, [])
                )
                votes[(layer,)] = (
                    item,
                    score + similarity,
                    supporters + [other],
                )
        return self._ranked("layers", votes)

    def _member_candidates(
        self,
        datamart: str,
        user_id: str,
        neighbours: list[tuple[str, float]],
        exclude_members: Iterable[tuple[str, str, str]],
    ) -> list[Recommendation]:
        excluded: set[tuple[str, str, str]] = set(exclude_members)
        for (dimension, level), keys in self.journal.member_profile(
            datamart, user_id
        ).items():
            excluded.update((dimension, level, key) for key in keys)
        votes: dict[tuple, tuple[dict, float, list[str]]] = {}
        for other, similarity in neighbours:
            for (dimension, level), keys in self.journal.member_profile(
                datamart, other
            ).items():
                for key in keys:
                    identity = (dimension, level, key)
                    if identity in excluded:
                        continue
                    item, score, supporters = votes.get(
                        identity,
                        (
                            {
                                "dimension": dimension,
                                "level": level,
                                "key": key,
                            },
                            0.0,
                            [],
                        ),
                    )
                    votes[identity] = (
                        item,
                        score + similarity,
                        supporters + [other],
                    )
        return self._ranked("members", votes)

    # -- memo ---------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "memo_size": len(self._memo),
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }
