"""The workload journal: an append-only event log per (datamart, user).

Every query, spatial-selection report and layer fetch that reaches the
:class:`~repro.service.facade.PersonalizationService` is journaled here —
the same traffic the cache hierarchy observes.  Histories are keyed by
``(datamart, user_id)``, *not* by session token: sessions expire and get
evicted, but a user's analysis history survives and a re-login resumes
it.

The journal is the recommender's ground truth, so its contract mirrors
the storage layer's invalidation protocol: a per-datamart monotonic
:meth:`~WorkloadJournal.generation` counter is bumped by every append,
and downstream memos (the recommender's) key on it — any new event in a
tenant invalidates that tenant's recommendations, appends elsewhere do
not.

Memory is bounded per user (``max_events_per_user``, oldest dropped
first) so a hot tenant cannot grow the journal without limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping

from repro.concurrency import make_lock

__all__ = ["WorkloadEvent", "WorkloadJournal"]

#: Event kinds the journal understands.
QUERY = "query"
SELECTION = "selection"
LAYER = "layer"


def _freeze(value: object) -> object:
    """Recursively freeze a payload value (dicts/lists/sets included)."""
    if isinstance(value, Mapping):
        return MappingProxyType({k: _freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class WorkloadEvent:
    """One journaled interaction.

    ``seq`` is a journal-wide monotonic sequence number (append order
    across all users of all tenants); ``payload`` is a recursively
    read-only mapping whose shape depends on ``kind``:

    * ``"query"`` — ``{"q": <stripped GeoMDQL text>}``;
    * ``"selection"`` — ``{"target", "condition", "members": ((dimension,
      level, key), ...)}`` (the session's member selection snapshot after
      acquisition rules fired);
    * ``"layer"`` — ``{"layer": <name>}``.
    """

    seq: int
    kind: str
    datamart: str
    user_id: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the payload (deeply) so journaled history cannot be
        # mutated through references callers or readers hold.
        object.__setattr__(self, "payload", _freeze(dict(self.payload)))


class WorkloadJournal:
    """Thread-safe, append-only workload log with per-tenant generations."""

    def __init__(self, max_events_per_user: int = 10_000) -> None:
        if max_events_per_user < 1:
            raise ValueError("max_events_per_user must be >= 1")
        self.max_events_per_user = max_events_per_user
        self._lock = make_lock("WorkloadJournal._lock")
        #: (datamart, user_id) -> events in append order.
        # guarded-by: _lock
        self._events: dict[tuple[str, str], list[WorkloadEvent]] = {}
        #: datamart -> monotonic generation (bumped by every append).
        # guarded-by: _lock
        self._generations: dict[str, int] = {}
        # guarded-by: _lock
        self._seq = 0

    # -- recording ----------------------------------------------------------------

    def record(
        self,
        datamart: str,
        user_id: str,
        kind: str,
        payload: Mapping[str, object] | None = None,
    ) -> WorkloadEvent:
        """Append one event, returning it (with its sequence number)."""
        if kind not in (QUERY, SELECTION, LAYER):
            raise ValueError(f"unknown workload event kind {kind!r}")
        with self._lock:
            self._seq += 1
            event = WorkloadEvent(
                seq=self._seq,
                kind=kind,
                datamart=datamart,
                user_id=user_id,
                payload=payload or {},
            )
            history = self._events.setdefault((datamart, user_id), [])
            history.append(event)
            if len(history) > self.max_events_per_user:
                del history[: len(history) - self.max_events_per_user]
            self._generations[datamart] = self._generations.get(datamart, 0) + 1
        return event

    def record_query(self, datamart: str, user_id: str, q: str) -> WorkloadEvent:
        return self.record(datamart, user_id, QUERY, {"q": q.strip()})

    def record_selection(
        self,
        datamart: str,
        user_id: str,
        target: str,
        condition: str,
        members: Iterable[tuple[str, str, str]] = (),
    ) -> WorkloadEvent:
        """Journal a spatial-selection report plus the member snapshot.

        ``members`` is the session's current ``(dimension, level, key)``
        selection after the report's acquisition rules fired — the
        spatial footprint the similarity model is built from.
        """
        return self.record(
            datamart,
            user_id,
            SELECTION,
            {
                "target": target,
                "condition": condition,
                "members": sorted([d, lv, k] for d, lv, k in members),
            },
        )

    def record_layer(self, datamart: str, user_id: str, layer: str) -> WorkloadEvent:
        return self.record(datamart, user_id, LAYER, {"layer": layer})

    # -- reading ------------------------------------------------------------------

    def generation(self, datamart: str) -> int:
        """Monotonic per-tenant version; any append bumps it."""
        with self._lock:
            return self._generations.get(datamart, 0)

    def users(self, datamart: str) -> list[str]:
        """Users with at least one journaled event, sorted."""
        with self._lock:
            return sorted(
                {user for dm, user in self._events if dm == datamart}
            )

    def events(self, datamart: str, user_id: str) -> list[WorkloadEvent]:
        """One user's history in append order (a copy)."""
        with self._lock:
            return list(self._events.get((datamart, user_id), ()))

    def queries(self, datamart: str, user_id: str) -> list[str]:
        """Distinct query texts in first-run order."""
        seen: dict[str, None] = {}
        for event in self.events(datamart, user_id):
            if event.kind == QUERY:
                seen.setdefault(event.payload["q"], None)
        return list(seen)

    def layers(self, datamart: str, user_id: str) -> set[str]:
        """Layer names this user has fetched."""
        return {
            event.payload["layer"]
            for event in self.events(datamart, user_id)
            if event.kind == LAYER
        }

    def member_profile(
        self, datamart: str, user_id: str
    ) -> dict[tuple[str, str], set[str]]:
        """Union of journaled member selections: (dimension, level) -> keys."""
        profile: dict[tuple[str, str], set[str]] = {}
        for event in self.events(datamart, user_id):
            if event.kind != SELECTION:
                continue
            for dimension, level, key in event.payload["members"]:
                profile.setdefault((dimension, level), set()).add(key)
        return profile

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-datamart event/user counts (for the health endpoint)."""
        with self._lock:
            out: dict[str, dict[str, int]] = {}
            for (datamart, _user), history in self._events.items():
                entry = out.setdefault(
                    datamart,
                    {"users": 0, "events": 0, "generation": 0},
                )
                entry["users"] += 1
                entry["events"] += len(history)
            for datamart, generation in self._generations.items():
                out.setdefault(
                    datamart, {"users": 0, "events": 0, "generation": 0}
                )["generation"] = generation
            return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(history) for history in self._events.values())
