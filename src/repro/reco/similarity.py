"""Pairwise user similarity over journaled spatial workloads.

Implements the hierarchy+geometry decomposition of Aissa & Gouider's
spatial-personalization similarity measure: two analysts are similar when
(a) their selections roll up into the same dimension members — shared
ancestors count, so two users working on different stores of the same
city still overlap at the ``City`` level — and (b) the regions they
analyse are geometrically close (envelope overlap, centroid distance).

The hierarchy component rides the storage layer's inverted roll-up index
(:meth:`~repro.storage.star.StarSchema.rollup_index`): a user's leaf
selection is lifted to every coarser level by one dict pass per level,
no per-member tree walks.  The geometry component goes through
:mod:`repro.geometry` (envelopes, centroids) and never touches exact
predicates — profiles are footprints, not topology.

All similarities are symmetric and land in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SchemaError, StorageError
from repro.geometry import Envelope, Point, centroid
from repro.storage.star import StarSchema

__all__ = [
    "SpatialProfile",
    "build_spatial_profile",
    "hierarchy_similarity",
    "geometry_similarity",
    "user_similarity",
]


@dataclass(frozen=True)
class SpatialProfile:
    """One user's spatial footprint, ready for pairwise comparison.

    ``level_keys`` holds the selected member keys per ``(dimension,
    level)`` *including* the rolled-up ancestors of every selected leaf;
    ``level_weights`` discounts coarser levels (two users sharing a State
    are less similar than two sharing a Store).  ``envelope`` and
    ``centroid`` summarize the geometry of the selected members.
    """

    level_keys: Mapping[tuple[str, str], frozenset[str]]
    level_weights: Mapping[tuple[str, str], float]
    envelope: Envelope | None
    centroid: Point | None

    @property
    def is_empty(self) -> bool:
        return not self.level_keys and self.envelope is None


def build_spatial_profile(
    star: StarSchema,
    members: Mapping[tuple[str, str], Iterable[str]],
) -> SpatialProfile:
    """Lift a journaled member selection into a :class:`SpatialProfile`.

    ``members`` is ``(dimension, level) -> keys`` as recorded by the
    journal.  Selections at non-leaf levels are first expanded to their
    leaves (through the roll-up index), then every leaf set is lifted
    back up to each reachable coarser level — so the profile captures the
    full vertical footprint of the workload.
    """
    leaf_keys: dict[str, set[str]] = {}
    for (dimension, level), keys in members.items():
        try:
            table = star.dimension_table(dimension)
        except StorageError:  # lint-ok: swallowed-error - documented stale-key degradation
            continue  # journaled against a schema that no longer has it
        keys = set(keys)
        if level == table.dimension.leaf:
            expanded = keys
        else:
            try:
                expanded = star.leaf_keys_rolled_to(dimension, level, keys)
            except (StorageError, SchemaError):  # lint-ok: swallowed-error - documented stale-key degradation
                continue
        leaf_keys.setdefault(dimension, set()).update(expanded)

    level_keys: dict[tuple[str, str], frozenset[str]] = {}
    level_weights: dict[tuple[str, str], float] = {}
    centroids: list[Point] = []
    coords: list[tuple[float, float]] = []
    for dimension, leaves in leaf_keys.items():
        table = star.dimension_table(dimension)
        dim = table.dimension
        # The journal outlives sessions (and star reloads): journaled keys
        # may no longer exist, and one stale entry must not poison every
        # profile of the tenant.
        leaves &= {member.key for member in table.leaf_members()}
        if not leaves:
            continue
        level_keys[(dimension, dim.leaf)] = frozenset(leaves)
        level_weights[(dimension, dim.leaf)] = 1.0
        for level in dim.levels:
            if level == dim.leaf:
                continue
            try:
                depth = len(dim.rollup_path(level)) - 1
                if star.use_indexes:
                    index = star.rollup_index(dimension, level)
                    ancestors = frozenset(
                        ancestor
                        for ancestor, leaf_set in index.items()
                        if leaf_set & leaves
                    )
                else:
                    # Transparency switch: the scan path the inverted
                    # index replaces, one roll-up walk per leaf.
                    ancestors = frozenset(
                        star.rollup_member(dimension, key, level).key
                        for key in leaves
                    )
            except (SchemaError, StorageError):  # lint-ok: swallowed-error - documented stale-key degradation
                continue  # level not on a hierarchy / roll-up link missing
            if ancestors:
                level_keys[(dimension, level)] = ancestors
                level_weights[(dimension, level)] = 0.5**depth
        for key in leaves:
            geometry = table.member(dim.leaf, key).geometry
            if geometry is None or geometry.is_empty:
                continue
            centroids.append(centroid(geometry))
            coords.extend(geometry.coords())

    mean_centroid = None
    if centroids:
        mean_centroid = Point(
            sum(p.x for p in centroids) / len(centroids),
            sum(p.y for p in centroids) / len(centroids),
        )
    return SpatialProfile(
        level_keys=level_keys,
        level_weights=level_weights,
        envelope=Envelope.of_coords(coords) if coords else None,
        centroid=mean_centroid,
    )


def _jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def hierarchy_similarity(a: SpatialProfile, b: SpatialProfile) -> float:
    """Depth-weighted Jaccard over the shared dimension levels."""
    levels = set(a.level_keys) | set(b.level_keys)
    if not levels:
        return 0.0
    total = 0.0
    weight_sum = 0.0
    for level in levels:
        weight = max(
            a.level_weights.get(level, 0.0), b.level_weights.get(level, 0.0)
        )
        total += weight * _jaccard(
            a.level_keys.get(level, frozenset()),
            b.level_keys.get(level, frozenset()),
        )
        weight_sum += weight
    return total / weight_sum if weight_sum else 0.0


def geometry_similarity(a: SpatialProfile, b: SpatialProfile) -> float:
    """Envelope-overlap + centroid-proximity similarity of two footprints.

    The overlap term is the area ratio of the envelope intersection to
    the envelope union (0 for disjoint or degenerate envelopes); the
    proximity term decays with centroid distance on the scale of the
    union envelope's diagonal, so "close" means close relative to the
    region the two users jointly analyse.
    """
    if a.envelope is None or b.envelope is None:
        return 0.0
    union = a.envelope.union(b.envelope)
    overlap = 0.0
    if union.area > 0 and a.envelope.intersects(b.envelope):
        inter_w = min(a.envelope.max_x, b.envelope.max_x) - max(
            a.envelope.min_x, b.envelope.min_x
        )
        inter_h = min(a.envelope.max_y, b.envelope.max_y) - max(
            a.envelope.min_y, b.envelope.min_y
        )
        overlap = (inter_w * inter_h) / union.area
    if a.centroid is None or b.centroid is None:
        return 0.5 * overlap
    distance = a.centroid.distance_to(b.centroid)
    diagonal = (union.width**2 + union.height**2) ** 0.5
    if diagonal == 0.0:
        proximity = 1.0  # both footprints collapse to the same point
    else:
        proximity = 1.0 / (1.0 + 4.0 * distance / diagonal)
    return 0.5 * overlap + 0.5 * proximity


def user_similarity(
    a: SpatialProfile, b: SpatialProfile, hierarchy_weight: float = 0.5
) -> float:
    """Combined similarity: ``w·hierarchy + (1-w)·geometry``."""
    if not 0.0 <= hierarchy_weight <= 1.0:
        raise ValueError("hierarchy_weight must be within [0, 1]")
    if a.is_empty or b.is_empty:
        return 0.0
    return hierarchy_weight * hierarchy_similarity(a, b) + (
        1.0 - hierarchy_weight
    ) * geometry_similarity(a, b)
