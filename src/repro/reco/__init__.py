"""Workload journal + spatial recommendation subsystem.

The paper personalizes a spatial data warehouse *per user*; the related
work's next step is *recommendation* — suggesting queries, layers and
dimension members a user has not explored yet, based on what similar
users did (Ben Ahmed et al.; Aissa & Gouider's hierarchy+geometry
similarity decomposition).  This package provides the three parts:

* :mod:`repro.reco.journal` — an append-only, thread-safe
  :class:`WorkloadJournal` recording every query, spatial selection and
  layer fetch per ``(datamart, user)``, hooked in at the service façade
  so it observes exactly the traffic the caches do;
* :mod:`repro.reco.similarity` — pairwise user similarity combining
  dimension-hierarchy overlap (shared rolled-up members through the
  star's inverted roll-up index) with geometric overlap of the selected
  regions (envelope intersection + centroid distance);
* :mod:`repro.reco.recommender` — ranked suggestions (GeoMDQL query
  texts, layers, dimension members) from the journals of the top-k most
  similar users, excluding what the target user already has, memoized
  under the same generation-keyed invalidation protocol as the rest of
  the cache hierarchy.
"""

from repro.reco.journal import WorkloadEvent, WorkloadJournal
from repro.reco.recommender import Recommendation, Recommender
from repro.reco.similarity import (
    SpatialProfile,
    build_spatial_profile,
    geometry_similarity,
    hierarchy_similarity,
    user_similarity,
)

__all__ = [
    "Recommendation",
    "Recommender",
    "SpatialProfile",
    "WorkloadEvent",
    "WorkloadJournal",
    "build_spatial_profile",
    "geometry_similarity",
    "hierarchy_similarity",
    "user_similarity",
]
