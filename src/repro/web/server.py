"""Optional stdlib HTTP adapter for the portal.

Serves a :class:`~repro.web.portal.PortalApp` over a real socket with
``http.server`` — useful for poking the portal with curl on a developer
machine.  Nothing in the test suite or the benchmarks uses this (the
reproduction environment is offline); they drive the app object directly.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer

from repro.web.http import parse_json_body
from repro.web.portal import PortalApp

__all__ = ["make_server", "serve"]


def _make_handler(app: PortalApp) -> type[BaseHTTPRequestHandler]:
    class PortalHandler(BaseHTTPRequestHandler):
        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("Content-Length", "0") or "0")
            raw = self.rfile.read(length) if length else b""
            body = parse_json_body(raw)
            token = self.headers.get("X-Session")
            response = app.handle(method, self.path, body, token)
            payload = json.dumps(response.body, default=str).encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("POST")

        def log_message(self, format: str, *args: object) -> None:
            pass  # keep test/demo output clean

    return PortalHandler


def make_server(
    app: PortalApp, host: str = "127.0.0.1", port: int = 8080
) -> HTTPServer:
    """Build the HTTP server without starting it (port 0 picks a free one)."""
    return HTTPServer((host, port), _make_handler(app))


def serve(app: PortalApp, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Block serving the portal (Ctrl-C to stop)."""
    server = make_server(app, host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
