"""Optional stdlib HTTP adapter for the portal.

Serves a :class:`~repro.web.portal.PortalApp` over a real socket with
``http.server`` — useful for poking the portal with curl on a developer
machine.  Nothing in the test suite or the benchmarks uses this (the
reproduction environment is offline); they drive the app object directly.

The adapter is deliberately dumb: it parses the path, query string, JSON
body and headers, hands everything to :meth:`PortalApp.handle`, and
writes the response (status, JSON body and response headers — including
the deprecation headers of the legacy-route shim) back out.  Concurrent
requests are safe under the threading server: the session store is
lock-protected, logins are serialized per engine, and requests carrying
the same token are serialized per session record in the service layer.
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.errors import WebError
from repro.web.http import error_response, parse_json_body
from repro.web.portal import PortalApp

__all__ = ["make_server", "serve"]


def _make_handler(app: PortalApp) -> type[BaseHTTPRequestHandler]:
    class PortalHandler(BaseHTTPRequestHandler):
        # HTTP/1.1 keep-alive: responses always carry Content-Length, so
        # persistent connections are safe — and they give the worker-pool
        # clients connection affinity (one TCP connection sticks to the
        # worker that accepted it).
        protocol_version = "HTTP/1.1"

        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("Content-Length", "0") or "0")
            raw = self.rfile.read(length) if length else b""
            split = urlsplit(self.path)
            query = dict(parse_qsl(split.query))
            headers = {key: value for key, value in self.headers.items()}
            try:
                body = parse_json_body(raw)
            except WebError as exc:
                response = error_response("bad_request", str(exc), 400)
            else:
                response = app.handle(
                    method, split.path, body, headers=headers, query=query
                )
            payload = json.dumps(response.body, default=str).encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for key, value in response.headers.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("POST")

        def log_message(self, format: str, *args: object) -> None:
            pass  # keep test/demo output clean

    return PortalHandler


def make_server(
    app: PortalApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    sock: socket.socket | None = None,
) -> ThreadingHTTPServer:
    """Build the HTTP server without starting it (port 0 picks a free one).

    ``sock`` adopts an already-bound, already-listening socket instead
    of binding a new one — the pre-fork worker pool binds once in the
    parent and every forked worker serves the inherited socket, so the
    kernel load-balances accepts across workers with no port races.
    """
    if sock is None:
        return ThreadingHTTPServer((host, port), _make_handler(app))
    server = ThreadingHTTPServer(
        sock.getsockname()[:2], _make_handler(app), bind_and_activate=False
    )
    # Replace the unbound socket the constructor made with the adopted
    # one; the server now accepts on it but never binds or listens.
    server.socket.close()
    server.socket = sock
    server.server_address = sock.getsockname()[:2]
    return server


def serve(app: PortalApp, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Block serving the portal (Ctrl-C to stop)."""
    server = make_server(app, host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
