"""Request/response primitives and routing for the portal simulation.

A dependency-free, WSGI-flavoured micro-framework: enough for the portal
(:mod:`repro.web.portal`) to behave like the web SOLAP clients the paper
targets (GeWOlap-style), while keeping everything in-process and
deterministic — the environment is offline, so no sockets are used in
tests or examples (an optional stdlib server adapter is provided in
:mod:`repro.web.server`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WebError

__all__ = ["Request", "Response", "Router", "json_response", "parse_json_body"]


@dataclass
class Request:
    """An HTTP-ish request."""

    method: str
    path: str
    body: dict = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    params: dict[str, str] = field(default_factory=dict)  # path parameters
    query: dict[str, str] = field(default_factory=dict)

    @property
    def session_token(self) -> str | None:
        """Session token from the ``X-Session`` header (cookie stand-in)."""
        return self.headers.get("X-Session")


@dataclass
class Response:
    """An HTTP-ish response with a JSON body."""

    status: int
    body: dict = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> dict:
        return self.body

    def text(self) -> str:
        return json.dumps(self.body, indent=2, sort_keys=True, default=str)


def json_response(body: dict, status: int = 200) -> Response:
    return Response(status=status, body=body)


_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z_0-9]*)\}")

Handler = Callable[[Request], Response]


class Router:
    """Method+path routing with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern[str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        if not pattern.startswith("/"):
            raise WebError(f"route pattern must start with '/': {pattern!r}")
        regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", pattern)
        self._routes.append((method.upper(), re.compile(f"^{regex}$"), handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def dispatch(self, request: Request) -> Response:
        """Route a request; 404/405 are returned, handler errors become 500."""
        path_matched = False
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method.upper():
                continue
            request.params = match.groupdict()
            try:
                return handler(request)
            except WebError as exc:
                return json_response({"error": str(exc)}, status=400)
            except Exception as exc:  # noqa: BLE001 - surface as 500
                return json_response(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
        if path_matched:
            return json_response({"error": "method not allowed"}, status=405)
        return json_response({"error": f"no route for {request.path}"}, status=404)


def parse_json_body(raw: bytes | str) -> dict:
    """Parse a JSON request body, mapping errors to :class:`WebError`."""
    if isinstance(raw, bytes):
        raw = raw.decode("utf-8")
    if not raw.strip():
        return {}
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise WebError(f"malformed JSON body: {exc}") from exc
    if not isinstance(body, dict):
        raise WebError("JSON body must be an object")
    return body
