"""Request/response primitives, routing and middleware for the portal.

A dependency-free, WSGI-flavoured micro-framework: enough for the portal
(:mod:`repro.web.portal`) to behave like the web SOLAP clients the paper
targets (GeWOlap-style), while keeping everything in-process and
deterministic — the environment is offline, so no sockets are used in
tests or examples (an optional stdlib server adapter is provided in
:mod:`repro.web.server`).

On top of the seed's :class:`Router`, this module provides a small
middleware pipeline (``Callable[[Request, Handler], Response]``) and the
uniform error envelope of the ``/api/v1`` surface::

    {"error": {"code": ..., "message": ..., "detail": ...}}

Built-in middlewares:

* :func:`error_envelope_middleware` — translates :class:`ServiceError`
  (and stray exceptions) into enveloped responses, innermost so the
  other middlewares observe the final status;
* :func:`session_token_middleware` — resolves the session token from the
  ``X-Session`` header or an ``Authorization: Bearer`` credential into
  ``request.context["token"]``;
* :func:`request_logging_middleware` — method/path/status/duration lines
  on a standard :mod:`logging` logger.
"""

from __future__ import annotations

import json
import logging
import re
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceError, WebError

__all__ = [
    "Request",
    "Response",
    "Router",
    "Handler",
    "Middleware",
    "json_response",
    "error_response",
    "parse_json_body",
    "error_envelope_middleware",
    "session_token_middleware",
    "request_logging_middleware",
]


def _header(headers: dict[str, str], name: str) -> str | None:
    """Case-insensitive header lookup (HTTP header names are)."""
    value = headers.get(name)
    if value is not None:
        return value
    lowered = name.lower()
    for key, value in headers.items():
        if key.lower() == lowered:
            return value
    return None


@dataclass
class Request:
    """An HTTP-ish request."""

    method: str
    path: str
    body: dict = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    params: dict[str, str] = field(default_factory=dict)  # path parameters
    query: dict[str, str] = field(default_factory=dict)
    context: dict = field(default_factory=dict)  # middleware scratch space

    @property
    def session_token(self) -> str | None:
        """Session token resolved by middleware, falling back to the raw
        ``X-Session`` header (cookie stand-in)."""
        token = self.context.get("token")
        if token is not None:
            return token
        return _header(self.headers, "X-Session")


@dataclass
class Response:
    """An HTTP-ish response with a JSON body."""

    status: int
    body: dict = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> dict:
        return self.body

    def text(self) -> str:
        return json.dumps(self.body, indent=2, sort_keys=True, default=str)


def json_response(body: dict, status: int = 200) -> Response:
    return Response(status=status, body=body)


def error_response(
    code: str, message: str, status: int, detail: object = None
) -> Response:
    """The uniform error envelope shared by every failure response."""
    return Response(
        status=status,
        body={"error": {"code": code, "message": message, "detail": detail}},
    )


_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z_0-9]*)\}")

Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]


def error_envelope_middleware(request: Request, handler: Handler) -> Response:
    """Translate exceptions into the uniform error envelope.

    :class:`ServiceError` carries its own code/status/detail;
    :class:`WebError` stays a plain 400 (legacy portal validation); any
    other exception becomes an opaque 500.
    """
    try:
        return handler(request)
    except ServiceError as exc:
        return json_response(exc.envelope(), status=exc.status)
    except WebError as exc:
        return error_response("bad_request", str(exc), 400)
    except Exception as exc:  # noqa: BLE001 - surface as 500
        return error_response("internal", f"{type(exc).__name__}: {exc}", 500)


def session_token_middleware(request: Request, handler: Handler) -> Response:
    """Resolve the session credential into ``request.context['token']``."""
    token = _header(request.headers, "X-Session")
    if token is None:
        authorization = _header(request.headers, "Authorization") or ""
        if authorization.startswith("Bearer "):
            token = authorization[len("Bearer ") :].strip() or None
    if token is not None:
        request.context["token"] = token
    return handler(request)


def request_logging_middleware(
    logger: logging.Logger | None = None,
) -> Middleware:
    """Build a middleware logging one line per request."""
    log = logger or logging.getLogger("repro.web")

    def middleware(request: Request, handler: Handler) -> Response:
        started = time.perf_counter()
        response = handler(request)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        log.info(
            "%s %s -> %d (%.2f ms)",
            request.method.upper(),
            request.path,
            response.status,
            elapsed_ms,
        )
        return response

    return middleware


class Router:
    """Method+path routing with ``{param}`` captures and middleware.

    Middlewares wrap every dispatched handler, first-added outermost;
    :func:`error_envelope_middleware` is always applied innermost so
    handler failures reach the other middlewares as enveloped responses,
    and a final safety net around the whole chain keeps middleware bugs
    from escaping as raw exceptions.
    """

    def __init__(self, middlewares: list[Middleware] | None = None) -> None:
        self._routes: list[tuple[str, re.Pattern[str], Handler]] = []
        self._middlewares: list[Middleware] = list(middlewares or [])

    def add_middleware(self, middleware: Middleware) -> None:
        self._middlewares.append(middleware)

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        if not pattern.startswith("/"):
            raise WebError(f"route pattern must start with '/': {pattern!r}")
        regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", pattern)
        self._routes.append((method.upper(), re.compile(f"^{regex}$"), handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def _resolve(self, request: Request) -> Handler:
        """Find the handler (binding path params), or a raising fallback."""
        path_matched = False
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method.upper():
                continue
            request.params = match.groupdict()
            return handler
        if path_matched:
            def method_not_allowed(req: Request) -> Response:
                raise ServiceError(
                    f"method {req.method.upper()} not allowed for {req.path}",
                    code="method_not_allowed",
                    status=405,
                )

            return method_not_allowed

        def not_found(req: Request) -> Response:
            raise ServiceError(
                f"no route for {req.path}", code="not_found", status=404
            )

        return not_found

    def dispatch(self, request: Request) -> Response:
        """Route a request through the middleware chain.

        404/405 are raised by fallback handlers so middleware (logging,
        auth) observes them like any other outcome.
        """
        chain: Handler = self._resolve(request)
        for middleware in reversed(
            [*self._middlewares, error_envelope_middleware]
        ):
            chain = _bind(middleware, chain)
        # Safety net: a buggy middleware above the envelope layer must
        # still produce an enveloped response, not a raw exception.
        return error_envelope_middleware(request, chain)


def _bind(middleware: Middleware, inner: Handler) -> Handler:
    def bound(request: Request) -> Response:
        return middleware(request, inner)

    return bound


def parse_json_body(raw: bytes | str) -> dict:
    """Parse a JSON request body, mapping errors to :class:`WebError`."""
    if isinstance(raw, bytes):
        raw = raw.decode("utf-8")
    if not raw.strip():
        return {}
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise WebError(f"malformed JSON body: {exc}") from exc
    if not isinstance(body, dict):
        raise WebError("JSON body must be an object")
    return body
