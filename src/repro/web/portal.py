"""The web analysis portal: "web-based personalization" made concrete.

A GeWOlap-style web front end over the personalization engine.  Decision
makers log in (SessionStart rules fire and build their personalized
view), run GeoMDQL-lite queries against that view, report spatial
selections (feeding the interest-tracking rules of Example 5.3), inspect
their profile and schema, and log out (SessionEnd).

Routes:

======  =======================  ==============================================
POST    /login                   {"user": ..., "location": [x, y]} -> token
POST    /logout                  end the session
GET     /me                      profile snapshot
GET     /schema                  personalized GeoMD schema (dict form)
GET     /view                    personalization statistics
POST    /query                   {"q": "SELECT ..."} over the personalized view
POST    /selection               {"target": ..., "condition": ...} event report
POST    /selection/rerun         re-run instance rules after interest changes
GET     /layers/{name}           features of a thematic layer (WKT)
======  =======================  ==============================================

All state is in-process; the ``X-Session`` header carries the token.
"""

from __future__ import annotations

import itertools

from repro.errors import WebError
from repro.geometry import Point
from repro.olap.gmdql import parse_query
from repro.olap.query import execute
from repro.personalization.engine import PersonalizationEngine, PersonalizedSession
from repro.sus.model import UserProfile
from repro.web.http import Request, Response, Router, json_response

__all__ = ["PortalApp"]


class PortalApp:
    """The in-process web application."""

    def __init__(self, engine: PersonalizationEngine) -> None:
        self.engine = engine
        self.router = Router()
        self._profiles: dict[str, UserProfile] = {}
        self._sessions: dict[str, PersonalizedSession] = {}
        self._token_counter = itertools.count(1)
        self._register_routes()

    # -- user management ------------------------------------------------------

    def register_user(self, profile: UserProfile) -> None:
        """Make a profile known to the portal (the paper gathers user data
        from requirements before runtime)."""
        self._profiles[profile.user_id] = profile

    # -- request entry point ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        token: str | None = None,
    ) -> Response:
        """Convenience in-process request dispatch."""
        headers = {"X-Session": token} if token else {}
        request = Request(
            method=method, path=path, body=dict(body or {}), headers=headers
        )
        return self.router.dispatch(request)

    # -- helpers ----------------------------------------------------------------

    def _session_for(self, request: Request) -> PersonalizedSession:
        token = request.session_token
        if token is None:
            raise WebError("missing X-Session header; POST /login first")
        session = self._sessions.get(token)
        if session is None or session.closed:
            raise WebError("invalid or expired session token")
        return session

    # -- routes ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.router.post("/login", self._login)
        self.router.post("/logout", self._logout)
        self.router.get("/me", self._me)
        self.router.get("/schema", self._schema)
        self.router.get("/view", self._view)
        self.router.post("/query", self._query)
        self.router.post("/selection", self._selection)
        self.router.post("/selection/rerun", self._selection_rerun)
        self.router.get("/layers/{name}", self._layer)

    def _login(self, request: Request) -> Response:
        user_id = request.body.get("user")
        if not user_id:
            raise WebError("login requires a 'user' field")
        profile = self._profiles.get(user_id)
        if profile is None:
            return json_response({"error": f"unknown user {user_id!r}"}, 404)
        location = None
        raw_location = request.body.get("location")
        if raw_location is not None:
            if (
                not isinstance(raw_location, (list, tuple))
                or len(raw_location) != 2
            ):
                raise WebError("'location' must be [x, y]")
            location = Point(float(raw_location[0]), float(raw_location[1]))
        session = self.engine.start_session(profile, location=location)
        token = f"tok-{next(self._token_counter)}"
        self._sessions[token] = session
        return json_response(
            {
                "token": token,
                "user": user_id,
                "rules_fired": [o.rule_name for o in session.outcomes],
                "view": session.view().stats(),
            }
        )

    def _logout(self, request: Request) -> Response:
        session = self._session_for(request)
        outcomes = session.end()
        assert request.session_token is not None
        del self._sessions[request.session_token]
        return json_response(
            {"ended": True, "rules_fired": [o.rule_name for o in outcomes]}
        )

    def _me(self, request: Request) -> Response:
        session = self._session_for(request)
        return json_response(session.profile.to_dict())

    def _schema(self, request: Request) -> Response:
        session = self._session_for(request)
        return json_response(session.view().schema.to_dict())

    def _view(self, request: Request) -> Response:
        session = self._session_for(request)
        return json_response(session.view().stats())

    def _query(self, request: Request) -> Response:
        session = self._session_for(request)
        text = request.body.get("q")
        if not text:
            raise WebError("query requires a 'q' field")
        view = session.view()
        query = parse_query(text, view.schema)
        selection = view.fact_rows if view.is_restricted else None
        cell_set = execute(view.star, query, selection, self.engine.metric)
        return json_response(
            {
                "axes": [str(a) for a in cell_set.axes],
                "labels": list(cell_set.labels),
                "rows": [list(row) for row in cell_set.to_rows()],
                "fact_rows_scanned": cell_set.fact_rows_scanned,
                "fact_rows_matched": cell_set.fact_rows_matched,
            }
        )

    def _selection(self, request: Request) -> Response:
        session = self._session_for(request)
        target = request.body.get("target")
        condition = request.body.get("condition")
        if not target or not condition:
            raise WebError("selection requires 'target' and 'condition'")
        outcomes = session.record_spatial_selection(target, condition)
        return json_response(
            {
                "matched_rules": [o.rule_name for o in outcomes],
                "profile": session.profile.to_dict(),
            }
        )

    def _selection_rerun(self, request: Request) -> Response:
        session = self._session_for(request)
        outcomes = session.rerun_instance_rules()
        return json_response(
            {
                "rules_fired": [o.rule_name for o in outcomes],
                "view": session.view().stats(),
            }
        )

    def _layer(self, request: Request) -> Response:
        session = self._session_for(request)
        name = request.params["name"]
        schema = session.view().schema
        if name not in schema.layers:
            return json_response({"error": f"no layer {name!r}"}, 404)
        table = self.engine.star.layer_table(name)
        return json_response(
            {
                "layer": name,
                "geometric_type": schema.layers[name].geometric_type.name,
                "features": [
                    {
                        "name": f.name,
                        "wkt": f.geometry.wkt,
                        "attributes": f.attributes,
                    }
                    for f in table.features()
                ],
            }
        )
