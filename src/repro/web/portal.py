"""The web analysis portal: "web-based personalization" made concrete.

A GeWOlap-style web front end over the personalization *service* layer.
Decision makers log in (SessionStart rules fire and build their
personalized view), run GeoMDQL-lite queries against that view, report
spatial selections (feeding the interest-tracking rules of Example 5.3),
inspect their profile and schema, and log out (SessionEnd).

The portal itself is a thin, versioned route table: every handler parses
a DTO, calls one :class:`~repro.service.facade.PersonalizationService`
method, and serializes the result.  All application logic, session state
(TTL/eviction via a pluggable store) and multi-datamart tenancy live in
:mod:`repro.service`.

Versioned routes (``/api/v1``):

======  ==============================  =======================================
POST    /api/v1/login                   {"user", "datamart"?, "location"?} ->
                                        token (datamart picks the tenant)
POST    /api/v1/logout                  end the session
GET     /api/v1/me                      profile snapshot
GET     /api/v1/schema                  personalized GeoMD schema (dict form)
GET     /api/v1/view                    personalization statistics
POST    /api/v1/query                   {"q", "limit"?, "offset"?} over the
                                        personalized view (paginated rows)
POST    /api/v1/selection               {"target", "condition"} event report
POST    /api/v1/selection/rerun         re-run instance rules after interest
                                        changes
GET     /api/v1/layers/{name}           features of a thematic layer (WKT),
                                        paginated via ?limit=&offset=
GET     /api/v1/datamarts               hosted tenants (no token required)
GET     /api/v1/health                  liveness + cache/journal stats
                                        (no token required)
GET     /api/v1/recommendations/{kind}  ranked suggestions mined from similar
                                        users' workload journals; kind is
                                        ``queries``/``layers``/``members``,
                                        tunable via ?k=&limit=&offset=
======  ==============================  =======================================

Login accepts a ``"journal": false`` flag to opt the session out of
workload journaling (its requests then never feed recommendations).

The seed's unversioned paths (``/login``, ``/view``, ...) still answer
through a deprecation shim: same handlers, plus ``Deprecation: true``
and ``X-Successor`` headers pointing at the ``/api/v1`` route.

Every failure response shares the uniform envelope
``{"error": {"code", "message", "detail"}}``; expired or invalid
sessions return structured 401s.  The session token travels in the
``X-Session`` header (or ``Authorization: Bearer``).
"""

from __future__ import annotations

import logging

from repro.personalization.engine import PersonalizationEngine
from repro.service import (
    DatamartRegistry,
    LoginRequest,
    PageRequest,
    PersonalizationService,
    QueryRequest,
    RecommendationRequest,
    SelectionRequest,
    SessionStore,
)
from repro.sus.model import UserProfile
from repro.web.http import (
    Handler,
    Request,
    Response,
    Router,
    json_response,
    request_logging_middleware,
    session_token_middleware,
)

__all__ = ["PortalApp", "API_PREFIX"]

API_PREFIX = "/api/v1"


class PortalApp:
    """The in-process web application: routes + middleware, no logic.

    Construct either from a single engine (back-compat: it becomes the
    ``default`` datamart) or from a pre-built service/registry for
    multi-tenant deployments.
    """

    def __init__(
        self,
        engine: PersonalizationEngine | None = None,
        *,
        service: PersonalizationService | None = None,
        registry: DatamartRegistry | None = None,
        session_store: SessionStore | None = None,
        datamart_name: str = "default",
        logger: logging.Logger | None = None,
    ) -> None:
        if service is not None:
            self.service = service
        else:
            registry = registry or DatamartRegistry()
            if engine is not None:
                registry.register(datamart_name, engine, default=True)
            self.service = PersonalizationService(
                registry, session_store=session_store
            )
        # Router.dispatch always applies error_envelope_middleware
        # innermost, so only the additive middlewares are listed here.
        self.router = Router(
            middlewares=[
                request_logging_middleware(logger),
                session_token_middleware,
            ]
        )
        self._register_routes()

    # -- user management ----------------------------------------------------------

    @property
    def registry(self) -> DatamartRegistry:
        return self.service.registry

    def register_user(
        self, profile: UserProfile, datamart: str | None = None
    ) -> None:
        """Make a profile known to a datamart (the paper gathers user data
        from requirements before runtime; ``None`` targets the default)."""
        self.registry.get(datamart).register_user(profile)

    # -- request entry point ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        token: str | None = None,
        headers: dict[str, str] | None = None,
        query: dict[str, str] | None = None,
    ) -> Response:
        """Convenience in-process request dispatch.

        ``headers`` are passed through verbatim (the seed silently
        dropped them); ``token`` is sugar for an ``X-Session`` header.
        """
        merged_headers = dict(headers or {})
        if token is not None:
            merged_headers.setdefault("X-Session", token)
        request = Request(
            method=method,
            path=path,
            body=dict(body or {}),
            headers=merged_headers,
            query=dict(query or {}),
        )
        return self.router.dispatch(request)

    # -- routes -------------------------------------------------------------------

    def _register_routes(self) -> None:
        routes: list[tuple[str, str, Handler]] = [
            ("POST", "/login", self._login),
            ("POST", "/logout", self._logout),
            ("GET", "/me", self._me),
            ("GET", "/schema", self._schema),
            ("GET", "/view", self._view),
            ("POST", "/query", self._query),
            ("POST", "/selection", self._selection),
            ("POST", "/selection/rerun", self._selection_rerun),
            ("GET", "/layers/{name}", self._layer),
        ]
        for method, path, handler in routes:
            self.router.add(method, API_PREFIX + path, handler)
            # Deprecation shim: the seed's unversioned paths keep
            # answering, marked with successor headers.
            self.router.add(
                method, path, _deprecated(handler, API_PREFIX + path)
            )
        self.router.get(API_PREFIX + "/datamarts", self._datamarts)
        self.router.get(API_PREFIX + "/health", self._health)
        self.router.get(
            API_PREFIX + "/recommendations/{kind}", self._recommendations
        )

    # -- handlers (thin delegation to the service) --------------------------------

    def _login(self, request: Request) -> Response:
        result = self.service.login(LoginRequest.from_body(request.body))
        return json_response(result.to_dict())

    def _logout(self, request: Request) -> Response:
        return json_response(
            self.service.logout(request.session_token).to_dict()
        )

    def _me(self, request: Request) -> Response:
        return json_response(self.service.profile(request.session_token))

    def _schema(self, request: Request) -> Response:
        return json_response(self.service.schema(request.session_token))

    def _view(self, request: Request) -> Response:
        return json_response(self.service.view_stats(request.session_token))

    def _query(self, request: Request) -> Response:
        result = self.service.query(
            request.session_token,
            QueryRequest.from_body(request.body, request.query),
        )
        return json_response(result.to_dict())

    def _selection(self, request: Request) -> Response:
        result = self.service.record_selection(
            request.session_token, SelectionRequest.from_body(request.body)
        )
        return json_response(result.to_dict())

    def _selection_rerun(self, request: Request) -> Response:
        return json_response(
            self.service.rerun_instance_rules(request.session_token).to_dict()
        )

    def _layer(self, request: Request) -> Response:
        result = self.service.layer(
            request.session_token,
            request.params["name"],
            PageRequest.from_mapping(request.query),
        )
        return json_response(result.to_dict())

    def _recommendations(self, request: Request) -> Response:
        result = self.service.recommendations(
            request.session_token,
            request.params["kind"],
            RecommendationRequest.from_mapping(request.query),
        )
        return json_response(result.to_dict())

    def _health(self, request: Request) -> Response:
        return json_response(self.service.health())

    def _datamarts(self, request: Request) -> Response:
        return json_response(
            {"datamarts": [dm.to_dict() for dm in self.service.datamarts()]}
        )


def _deprecated(handler: Handler, successor: str) -> Handler:
    """Wrap a v1 handler for a legacy unversioned route."""

    def shimmed(request: Request) -> Response:
        response = handler(request)
        response.headers.setdefault("Deprecation", "true")
        response.headers.setdefault("X-Successor", successor)
        return response

    return shimmed
