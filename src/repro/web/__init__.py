"""Web portal simulation: the "web-based" half of the paper's title.

A dependency-free request/response framework plus a GeWOlap-style portal
app over the personalization engine (login → personalized view → GeoMDQL
queries → spatial-selection events → logout), with an optional stdlib
HTTP adapter for interactive use.
"""

from repro.web.http import Request, Response, Router, json_response, parse_json_body
from repro.web.portal import PortalApp

__all__ = [
    "PortalApp",
    "Request",
    "Response",
    "Router",
    "json_response",
    "parse_json_body",
]
