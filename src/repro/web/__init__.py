"""Web portal simulation: the "web-based" half of the paper's title.

A dependency-free request/response framework with middleware, plus a
GeWOlap-style portal app exposing the personalization service as a
versioned ``/api/v1`` REST surface (login → personalized view → GeoMDQL
queries → spatial-selection events → logout), with an optional stdlib
HTTP adapter for interactive use.  Application logic, session storage
and multi-datamart tenancy live in :mod:`repro.service`.
"""

from repro.web.http import (
    Middleware,
    Request,
    Response,
    Router,
    error_envelope_middleware,
    error_response,
    json_response,
    parse_json_body,
    request_logging_middleware,
    session_token_middleware,
)
from repro.web.portal import API_PREFIX, PortalApp

__all__ = [
    "API_PREFIX",
    "Middleware",
    "PortalApp",
    "Request",
    "Response",
    "Router",
    "error_envelope_middleware",
    "error_response",
    "json_response",
    "parse_json_body",
    "request_logging_middleware",
    "session_token_middleware",
]
