"""Exception hierarchy shared by every subsystem of :mod:`repro`.

Each subsystem raises subclasses of :class:`ReproError` so that callers can
catch a single base class at API boundaries (the web portal, the
personalization engine) while tests can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Invalid geometric construction or unsupported geometric operation."""


class WKTError(GeometryError):
    """Malformed Well-Known Text input."""


class ModelError(ReproError):
    """Invalid (meta)model construction: UML, MD or GeoMD schemas."""


class ProfileError(ModelError):
    """Stereotype/profile misuse (wrong base metaclass, duplicates...)."""


class SchemaError(ModelError):
    """Multidimensional schema violates a structural constraint."""


class StorageError(ReproError):
    """Star-schema storage integrity violation (keys, arity, types)."""


class QueryError(ReproError):
    """Malformed or unresolvable OLAP query."""


class UserModelError(ReproError):
    """Invalid spatial-aware user model structure or profile update."""


class PRMLError(ReproError):
    """Base class for PRML language errors."""


class PRMLSyntaxError(PRMLError):
    """Lexical or syntactic error in PRML source text.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    tooling can point at the rule text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PRMLSemanticError(PRMLError):
    """A parsed rule references unknown model elements or mistypes an op."""


class PRMLRuntimeError(PRMLError):
    """Failure while evaluating a rule against a runtime context."""


class PersonalizationError(ReproError):
    """Personalization engine misconfiguration or phase-ordering violation."""


class WebError(ReproError):
    """Portal-simulation level failure (bad route, bad session...)."""


class ServiceError(ReproError):
    """Application-service failure with a uniform wire representation.

    Every instance carries a machine-readable ``code``, an HTTP ``status``
    and an optional structured ``detail``; :meth:`envelope` renders the
    canonical ``{"error": {"code", "message", "detail"}}`` body that all
    ``/api/v1`` error responses share.
    """

    default_code = "internal"
    default_status = 500

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        status: int | None = None,
        detail: object = None,
    ) -> None:
        super().__init__(message)
        self.code = code or self.default_code
        self.status = status or self.default_status
        self.detail = detail

    def envelope(self) -> dict:
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                "detail": self.detail,
            }
        }


class BadRequestError(ServiceError):
    """The request is syntactically or semantically invalid (HTTP 400)."""

    default_code = "bad_request"
    default_status = 400


class UnauthorizedError(ServiceError):
    """Missing, unknown or expired session credentials (HTTP 401)."""

    default_code = "unauthorized"
    default_status = 401


class NotFoundError(ServiceError):
    """A named resource (user, datamart, layer, route) does not exist."""

    default_code = "not_found"
    default_status = 404
