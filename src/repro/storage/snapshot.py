"""JSON snapshots of loaded star schemas.

The repository side of the warehouse: a loaded (and possibly already
personalized) star — schema, dimension members with roll-up links and
geometries, fact columns, layer features — serializes to one JSON
document and loads back bit-identically.  Geometries travel as WKT inside
a ``{"__wkt__": ...}`` wrapper so plain JSON tooling can still read the
files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import StorageError
from repro.geomd.schema import GeoMDSchema
from repro.geometry import Geometry, wkt_dumps, wkt_loads
from repro.mdm.model import MDSchema
from repro.storage.star import StarSchema

__all__ = ["star_to_dict", "star_from_dict", "save_star", "load_star"]

_WKT_KEY = "__wkt__"


def _encode_value(value: object) -> object:
    if isinstance(value, Geometry):
        return {_WKT_KEY: wkt_dumps(value)}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and set(value) == {_WKT_KEY}:
        return wkt_loads(value[_WKT_KEY])
    return value


def star_to_dict(star: StarSchema) -> dict:
    """Serialize a loaded star schema to a JSON-ready dict."""
    schema = star.schema
    data: dict = {
        "schema": schema.to_dict(),
        "schema_kind": "geomd" if isinstance(schema, GeoMDSchema) else "md",
        "dimensions": {},
        "facts": {},
        "layers": {},
    }
    for dim_name, dimension in schema.dimensions.items():
        table = star.dimension_table(dim_name)
        levels: dict[str, list[dict]] = {}
        for level_name in dimension.levels:
            levels[level_name] = [
                {
                    "key": member.key,
                    "attributes": {
                        name: _encode_value(value)
                        for name, value in member.attributes.items()
                    },
                    "parents": dict(member.parents),
                }
                for member in table.members(level_name)
            ]
        data["dimensions"][dim_name] = levels
    for fact_name in schema.facts:
        table = star.fact_table(fact_name)
        n = len(table)
        # Fact columns travel dictionary-encoded, mirroring the in-memory
        # layout: per dimension the interned keys in code order plus the
        # raw code column.  Codes are assigned in first-appearance order
        # on both sides, so a round trip is bit-identical.
        data["facts"][fact_name] = {
            "dictionaries": {
                dim: table.dictionary(dim).keys()
                for dim in table.fact.dimension_names
            },
            "codes": {
                dim: list(table.key_codes(dim))[:n]
                for dim in table.fact.dimension_names
            },
            "measures": {
                m: list(table.measure_column(m)) for m in table.fact.measures
            },
        }
    for layer_name, layer_table in star.layer_tables.items():
        data["layers"][layer_name] = [
            {
                "name": feature.name,
                "wkt": wkt_dumps(feature.geometry),
                "attributes": feature.attributes,
            }
            for feature in layer_table.features()
        ]
    return data


def star_from_dict(data: dict) -> StarSchema:
    """Rebuild a star schema (and its contents) from a snapshot dict."""
    if data.get("schema_kind") == "geomd":
        schema: MDSchema = GeoMDSchema.from_dict(data["schema"])
    else:
        schema = MDSchema.from_dict(data["schema"])
    star = StarSchema(schema)

    for dim_name, levels in data["dimensions"].items():
        dimension = schema.dimension(dim_name)
        # Parents must exist before children: insert levels coarsest-first
        # (reverse of any hierarchy path order containing them).
        ordered: list[str] = []
        remaining = set(levels)
        while remaining:
            progressed = False
            for level_name in sorted(remaining):
                parents = {
                    coarser
                    for h in dimension.hierarchies.values()
                    for finer, coarser in h.rollup_edges()
                    if finer == level_name
                }
                if parents <= set(ordered):
                    ordered.append(level_name)
                    remaining.discard(level_name)
                    progressed = True
            if not progressed:
                raise StorageError(
                    f"snapshot dimension {dim_name!r} has an unsatisfiable "
                    f"level order"
                )
        for level_name in ordered:
            for member_data in levels[level_name]:
                star.add_member(
                    dim_name,
                    level_name,
                    member_data["key"],
                    {
                        name: _decode_value(value)
                        for name, value in member_data["attributes"].items()
                    },
                    parents=member_data["parents"],
                )

    for fact_name, fact_data in data["facts"].items():
        if "codes" in fact_data:
            # Dictionary-encoded format: decode each dimension's code
            # column through its interned key list.
            dictionaries = fact_data["dictionaries"]
            keys = {}
            for dim, codes in fact_data["codes"].items():
                interned = dictionaries.get(dim, [])
                try:
                    keys[dim] = [interned[code] for code in codes]
                except (IndexError, TypeError):
                    raise StorageError(
                        f"snapshot fact {fact_name!r}: code column for "
                        f"{dim!r} references codes beyond its dictionary "
                        f"({len(interned)} keys)"
                    ) from None
        else:
            keys = fact_data["keys"]  # legacy row-keys format
        measures = fact_data["measures"]
        dims = list(keys)
        measure_names = list(measures)
        counts = {len(column) for column in keys.values()} | {
            len(column) for column in measures.values()
        }
        if len(counts) > 1:
            raise StorageError(
                f"snapshot fact {fact_name!r} has ragged columns: {counts}"
            )
        star.insert_facts(
            fact_name,
            [
                (
                    {dim: keys[dim][row] for dim in dims},
                    {m: measures[m][row] for m in measure_names},
                )
                for row in range(next(iter(counts), 0))
            ],
        )

    for layer_name, features in data["layers"].items():
        table = star.ensure_layer_table(layer_name)
        for feature in features:
            table.add_feature(
                feature["name"],
                wkt_loads(feature["wkt"]),
                feature["attributes"],
            )
    return star


def save_star(star: StarSchema, path: str | Path) -> None:
    """Write a star snapshot as JSON."""
    Path(path).write_text(json.dumps(star_to_dict(star), sort_keys=True))


def load_star(path: str | Path) -> StarSchema:
    """Load a star snapshot written by :func:`save_star`."""
    return star_from_dict(json.loads(Path(path).read_text()))
