"""JSON snapshots of loaded star schemas, and generation time travel.

The repository side of the warehouse: a loaded (and possibly already
personalized) star — schema, dimension members with roll-up links and
geometries, fact columns, layer features — serializes to one JSON
document and loads back bit-identically.  Geometries travel as WKT inside
a ``{"__wkt__": ...}`` wrapper so plain JSON tooling can still read the
files.

:class:`StarHistory` builds on the same serialization for
**as-of-generation reads** (the Iceberg time-travel idiom): it listens to
the star's mutation stream, takes generation-stamped checkpoints
(eagerly whenever a mutation has no replayable delta, periodically
otherwise), and answers :meth:`StarHistory.as_of` by rehydrating the
newest checkpoint at or before the requested generation and replaying
the mutation log's typed deltas forward.  Reconstruction preserves
insertion order end to end — member levels, fact row order, dictionary
code assignment — so a query against the reconstructed star is
bit-identical to the answer the live star gave at that generation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.concurrency import make_rlock
from repro.errors import StorageError
from repro.geomd.gtypes_enum import GeometricType
from repro.geomd.schema import GeoMDSchema
from repro.geometry import Geometry, wkt_dumps, wkt_loads
from repro.lru import ThreadSafeLRU
from repro.mdm.model import MDSchema
from repro.storage.star import StarMutation, StarSchema, thaw_mapping

__all__ = [
    "HistoryError",
    "StarHistory",
    "star_to_dict",
    "star_from_dict",
    "save_star",
    "load_star",
]


class HistoryError(StorageError):
    """An as-of read cannot be answered from the retained history."""

_WKT_KEY = "__wkt__"


def _encode_value(value: object) -> object:
    if isinstance(value, Geometry):
        return {_WKT_KEY: wkt_dumps(value)}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and set(value) == {_WKT_KEY}:
        return wkt_loads(value[_WKT_KEY])
    return value


def star_to_dict(star: StarSchema) -> dict:
    """Serialize a loaded star schema to a JSON-ready dict."""
    schema = star.schema
    data: dict = {
        "schema": schema.to_dict(),
        "schema_kind": "geomd" if isinstance(schema, GeoMDSchema) else "md",
        "dimensions": {},
        "facts": {},
        "layers": {},
    }
    for dim_name, dimension in schema.dimensions.items():
        table = star.dimension_table(dim_name)
        levels: dict[str, list[dict]] = {}
        for level_name in dimension.levels:
            levels[level_name] = [
                {
                    "key": member.key,
                    "attributes": {
                        name: _encode_value(value)
                        for name, value in member.attributes.items()
                    },
                    "parents": dict(member.parents),
                }
                for member in table.members(level_name)
            ]
        data["dimensions"][dim_name] = levels
    for fact_name in schema.facts:
        table = star.fact_table(fact_name)
        n = len(table)
        # Fact columns travel dictionary-encoded, mirroring the in-memory
        # layout: per dimension the interned keys in code order plus the
        # raw code column.  Codes are assigned in first-appearance order
        # on both sides, so a round trip is bit-identical.
        data["facts"][fact_name] = {
            "dictionaries": {
                dim: table.dictionary(dim).keys()
                for dim in table.fact.dimension_names
            },
            "codes": {
                dim: list(table.key_codes(dim))[:n]
                for dim in table.fact.dimension_names
            },
            "measures": {
                m: list(table.measure_column(m)) for m in table.fact.measures
            },
        }
    for layer_name, layer_table in star.layer_tables.items():
        data["layers"][layer_name] = [
            {
                "name": feature.name,
                "wkt": wkt_dumps(feature.geometry),
                "attributes": feature.attributes,
            }
            for feature in layer_table.features()
        ]
    return data


def star_from_dict(data: dict) -> StarSchema:
    """Rebuild a star schema (and its contents) from a snapshot dict."""
    if data.get("schema_kind") == "geomd":
        schema: MDSchema = GeoMDSchema.from_dict(data["schema"])
    else:
        schema = MDSchema.from_dict(data["schema"])
    star = StarSchema(schema)

    for dim_name, levels in data["dimensions"].items():
        dimension = schema.dimension(dim_name)
        # Parents must exist before children: insert levels coarsest-first
        # (reverse of any hierarchy path order containing them).
        ordered: list[str] = []
        remaining = set(levels)
        while remaining:
            progressed = False
            for level_name in sorted(remaining):
                parents = {
                    coarser
                    for h in dimension.hierarchies.values()
                    for finer, coarser in h.rollup_edges()
                    if finer == level_name
                }
                if parents <= set(ordered):
                    ordered.append(level_name)
                    remaining.discard(level_name)
                    progressed = True
            if not progressed:
                raise StorageError(
                    f"snapshot dimension {dim_name!r} has an unsatisfiable "
                    f"level order"
                )
        for level_name in ordered:
            for member_data in levels[level_name]:
                star.add_member(
                    dim_name,
                    level_name,
                    member_data["key"],
                    {
                        name: _decode_value(value)
                        for name, value in member_data["attributes"].items()
                    },
                    parents=member_data["parents"],
                )

    for fact_name, fact_data in data["facts"].items():
        if "codes" in fact_data:
            # Dictionary-encoded format: decode each dimension's code
            # column through its interned key list.
            dictionaries = fact_data["dictionaries"]
            keys = {}
            for dim, codes in fact_data["codes"].items():
                interned = dictionaries.get(dim, [])
                try:
                    keys[dim] = [interned[code] for code in codes]
                except (IndexError, TypeError):
                    raise StorageError(
                        f"snapshot fact {fact_name!r}: code column for "
                        f"{dim!r} references codes beyond its dictionary "
                        f"({len(interned)} keys)"
                    ) from None
        else:
            keys = fact_data["keys"]  # legacy row-keys format
        measures = fact_data["measures"]
        dims = list(keys)
        measure_names = list(measures)
        counts = {len(column) for column in keys.values()} | {
            len(column) for column in measures.values()
        }
        if len(counts) > 1:
            raise StorageError(
                f"snapshot fact {fact_name!r} has ragged columns: {counts}"
            )
        star.insert_facts(
            fact_name,
            [
                (
                    {dim: keys[dim][row] for dim in dims},
                    {m: measures[m][row] for m in measure_names},
                )
                for row in range(next(iter(counts), 0))
            ],
        )

    for layer_name, features in data["layers"].items():
        table = star.ensure_layer_table(layer_name)
        for feature in features:
            table.add_feature(
                feature["name"],
                wkt_loads(feature["wkt"]),
                feature["attributes"],
            )
    return star


def save_star(star: StarSchema, path: str | Path) -> None:
    """Write a star snapshot as JSON."""
    Path(path).write_text(json.dumps(star_to_dict(star), sort_keys=True))


def load_star(path: str | Path) -> StarSchema:
    """Load a star snapshot written by :func:`save_star`."""
    return star_from_dict(json.loads(Path(path).read_text()))


class StarHistory:
    """Generation-stamped checkpoints + log replay for as-of reads.

    Attached to a live star (one history per star), this listens to its
    mutation stream and maintains a small set of :func:`star_to_dict`
    checkpoints keyed by the generation they captured:

    * a **baseline** checkpoint at attach time;
    * an **eager** checkpoint after every mutation that carries no
      replayable delta (in-place member updates, payload-less
      degradations) — the log cannot reproduce those, so the checkpoint
      re-anchors answerability;
    * a **periodic** checkpoint every ``checkpoint_interval`` generations
      so replay chains stay bounded under pure-delta churn.

    :meth:`as_of` answers a read at generation ``g`` by rehydrating the
    newest checkpoint at or before ``g`` and replaying the retained
    mutation-log deltas forward.  Retention is explicit: a request older
    than the oldest checkpoint, or whose replay range has been evicted
    from the bounded log, raises :class:`HistoryError` (mapped to the
    API error envelope as ``as_of_unavailable``).
    """

    def __init__(
        self,
        star: StarSchema,
        *,
        checkpoint_interval: int = 4096,
        max_checkpoints: int = 8,
        reconstruction_cache: int = 4,
    ) -> None:
        if checkpoint_interval < 1:
            raise HistoryError("checkpoint_interval must be >= 1")
        if max_checkpoints < 1:
            raise HistoryError("max_checkpoints must be >= 1")
        self.star = star
        self.checkpoint_interval = checkpoint_interval
        self.max_checkpoints = max_checkpoints
        self._lock = make_rlock("StarHistory._lock")
        # generation -> star_to_dict checkpoint taken at that generation.
        # guarded-by: _lock
        self._checkpoints: dict[int, dict] = {}
        # generation -> reconstructed StarSchema (immutable once built).
        self._stars = ThreadSafeLRU(reconstruction_cache)
        self.checkpoints_taken = 0
        self.replays = 0
        self._take_checkpoint()
        star.add_mutation_listener(self._on_mutation)
        star.history = self

    @classmethod
    def attach(cls, star: StarSchema, **kwargs) -> "StarHistory":
        """The star's history, creating and registering one if absent."""
        if star.history is not None:
            return star.history
        return cls(star, **kwargs)

    def detach(self) -> None:
        """Stop listening and unbind from the star."""
        self.star.remove_mutation_listener(self._on_mutation)
        if self.star.history is self:
            self.star.history = None

    # -- checkpointing --------------------------------------------------------

    def _on_mutation(self, mutation: StarMutation) -> None:
        if not mutation.is_replayable:
            self._take_checkpoint()
            return
        with self._lock:
            newest = max(self._checkpoints, default=-1)
        if mutation.generation - newest >= self.checkpoint_interval:
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Checkpoint the star's current state, stamped with its generation.

        The star's cache lock is held across the (generation, contents)
        pair so a concurrent ``note_*_change`` cannot slide the counter
        under a half-serialized snapshot; table writes that precede
        their ``note_*`` call can still leak in, which replay tolerates
        by skipping already-present members/features.
        """
        with self.star._cache_lock:
            generation = self.star.generation
            data = star_to_dict(self.star)
        with self._lock:
            self._checkpoints[generation] = data
            self.checkpoints_taken += 1
            while len(self._checkpoints) > self.max_checkpoints:
                del self._checkpoints[min(self._checkpoints)]

    # -- as-of reads ----------------------------------------------------------

    def as_of(self, generation: int) -> StarSchema:
        """The star as it stood at ``generation`` (bit-identical replay).

        Returns the live star when ``generation`` is current; otherwise a
        reconstructed, effectively read-only star (cached per
        generation).  Raises :class:`HistoryError` when the generation is
        in the future or has fallen out of the retained history.
        """
        current = self.star.generation
        if generation == current:
            return self.star
        if generation > current:
            raise HistoryError(
                f"as_of generation {generation} is in the future "
                f"(current generation is {current})"
            )
        cached = self._stars.get(generation)
        if cached is not None:
            return cached  # type: ignore[return-value]
        with self._lock:
            base = max(
                (g for g in self._checkpoints if g <= generation), default=None
            )
            if base is None:
                oldest = min(self._checkpoints, default=None)
                raise HistoryError(
                    f"as_of generation {generation} predates the retained "
                    f"history (oldest checkpoint: {oldest})"
                )
            data = self._checkpoints[base]
        mutations = self.star.mutation_log.between(base, generation)
        if len(mutations) != generation - base or not all(
            m.is_replayable for m in mutations
        ):
            raise HistoryError(
                f"as_of generation {generation}: the mutation range "
                f"({base}, {generation}] is no longer fully retained or "
                f"replayable"
            )
        reconstructed = star_from_dict(data)
        # Mirror the live star's execution switches so an as-of query
        # takes the same code paths (bit-identity with recorded answers).
        reconstructed.use_indexes = self.star.use_indexes
        reconstructed.use_vectorized = self.star.use_vectorized
        reconstructed.use_numpy = self.star.use_numpy
        for mutation in mutations:
            self._replay(reconstructed, mutation)
        self.replays += 1
        self._stars.put(generation, reconstructed)
        return reconstructed

    def _replay(self, star: StarSchema, mutation: StarMutation) -> None:
        """Apply one logged delta to a reconstructed star.

        Replay is idempotent per entry (already-present members and
        features are skipped) so a checkpoint that raced a table write
        cannot poison reconstruction.
        """
        payload = mutation.payload_dict()
        if mutation.is_fact_delta:
            live = self.star.fact_table(mutation.fact)
            dims = live.fact.dimension_names
            measure_names = live.fact.measures
            rows = []
            for row_id in mutation.row_ids:
                row = live.row(row_id)
                rows.append(
                    (
                        {dim: row[dim] for dim in dims},
                        {m: row[m] for m in measure_names},
                    )
                )
            table = star.fact_table(mutation.fact)
            fresh = [
                row for offset, row in zip(mutation.row_ids, rows)
                if offset >= len(table)
            ]
            if fresh:
                star.insert_facts(mutation.fact, fresh)
        elif mutation.is_member_add:
            dimension = mutation.dimension
            level = str(payload["level"])
            key = str(payload["key"])
            table = star.dimension_table(dimension)
            try:
                table.member(level, key)
            except StorageError:
                star.add_member(
                    dimension,
                    level,
                    key,
                    thaw_mapping(payload.get("attributes")),
                    parents={
                        str(p): str(k)
                        for p, k in thaw_mapping(payload.get("parents")).items()
                    },
                )
        elif mutation.is_feature_add:
            self._replay_feature(
                star,
                mutation.layer,
                str(payload["name"]),
                payload.get("geometry"),
                thaw_mapping(payload.get("attributes")),
            )
        elif mutation.is_feature_bulk:
            for entry in payload.get("features", ()):
                name, geometry, attributes = entry
                self._replay_feature(
                    star, mutation.layer, str(name), geometry,
                    thaw_mapping(attributes),
                )
        elif mutation.is_schema_patch:
            schema = star.schema
            if not isinstance(schema, GeoMDSchema):
                raise HistoryError(
                    "cannot replay a schema patch onto a non-GeoMD star"
                )
            geometric_type = GeometricType[str(payload["geometric_type"])]
            if mutation.op == "add_layer":
                schema.add_layer(str(payload["layer"]), geometric_type)
                star.ensure_layer_table(str(payload["layer"]))
            else:
                schema.become_spatial(str(payload["level"]), geometric_type)
        else:  # pragma: no cover - as_of() pre-validates replayability
            raise HistoryError(
                f"mutation at generation {mutation.generation} "
                f"({mutation.kind}/{mutation.op}) is not replayable"
            )

    def _replay_feature(
        self,
        star: StarSchema,
        layer: str,
        name: str,
        geometry: object,
        attributes: dict,
    ) -> None:
        if not isinstance(geometry, Geometry):
            raise HistoryError(
                f"feature delta for layer {layer!r} carries no geometry"
            )
        table = star.ensure_layer_table(layer)
        try:
            table.feature(name)
        except StorageError:
            star.add_feature(layer, name, geometry, attributes)

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            generations = sorted(self._checkpoints)
            return {
                "checkpoints": len(generations),
                "oldest_checkpoint": generations[0] if generations else None,
                "newest_checkpoint": generations[-1] if generations else None,
                "checkpoint_interval": self.checkpoint_interval,
                "checkpoints_taken": self.checkpoints_taken,
                "replays": self.replays,
                "reconstructions_cached": len(self._stars),
            }
