"""In-memory star-schema tables: dimensions, facts and layers.

The reproduction's warehouse substrate.  Dimension tables hold level
members with explicit roll-up links (the ``r``/``d`` associations of the
MD profile materialized as parent keys); the fact table is columnar
(one list per foreign key and per measure) so that OLAP scans and
personalized selections stay cheap; layer tables hold the geographic
features that ``AddLayer`` exposes to the rules.
"""

from __future__ import annotations

from array import array
from itertools import compress, islice
from typing import Iterable, Iterator, Mapping, Sequence

from repro.concurrency import make_lock
from repro.errors import StorageError
from repro.geomd.schema import GEOMETRY_ATTRIBUTE, Layer
from repro.geometry import Geometry
from repro.mdm.model import Dimension, Fact
from repro.storage.columns import Dictionary
from repro.vectorized import numpy_backend

__all__ = ["Member", "DimensionTable", "FactTable", "Feature", "LayerTable"]


class Member:
    """A member (row) of a dimension level."""

    __slots__ = ("level", "key", "attributes", "parents")

    def __init__(
        self,
        level: str,
        key: str,
        attributes: Mapping[str, object],
        parents: Mapping[str, str],
    ) -> None:
        self.level = level
        self.key = key
        self.attributes = dict(attributes)
        #: parent level name -> parent member key (one per roll-up edge)
        self.parents = dict(parents)

    def get(self, attribute: str) -> object:
        if attribute in self.attributes:
            return self.attributes[attribute]
        raise StorageError(
            f"member {self.key!r} of level {self.level!r} has no attribute "
            f"{attribute!r}; available: {sorted(self.attributes)}"
        )

    @property
    def geometry(self) -> Geometry | None:
        value = self.attributes.get(GEOMETRY_ATTRIBUTE)
        if value is None:
            return None
        if not isinstance(value, Geometry):
            raise StorageError(
                f"member {self.key!r}: geometry attribute holds "
                f"{type(value).__name__}, not a Geometry"
            )
        return value

    def __repr__(self) -> str:
        return f"<Member {self.level}:{self.key}>"


class DimensionTable:
    """Members of every level of one dimension, with roll-up links."""

    def __init__(self, dimension: Dimension) -> None:
        self.dimension = dimension
        self._levels: dict[str, dict[str, Member]] = {
            name: {} for name in dimension.levels
        }

    def add_member(
        self,
        level: str,
        key: str,
        attributes: Mapping[str, object] | None = None,
        parents: Mapping[str, str] | None = None,
    ) -> Member:
        """Insert a member; parent keys are validated against stored members.

        ``parents`` maps parent level name -> parent member key for every
        roll-up edge leaving ``level``.  Parents must be inserted first
        (coarsest levels before finer ones).
        """
        if level not in self._levels:
            raise StorageError(
                f"dimension {self.dimension.name!r} has no level {level!r}"
            )
        if key in self._levels[level]:
            raise StorageError(
                f"duplicate member {key!r} in level "
                f"{self.dimension.name}.{level}"
            )
        attributes = dict(attributes or {})
        level_def = self.dimension.level(level)
        attributes.setdefault(level_def.key, key)
        for attr_name in attributes:
            if attr_name not in level_def.attributes and attr_name != GEOMETRY_ATTRIBUTE:
                raise StorageError(
                    f"level {self.dimension.name}.{level} has no attribute "
                    f"{attr_name!r}"
                )
        parents = dict(parents or {})
        expected_parents = {
            coarser
            for h in self.dimension.hierarchies.values()
            for finer, coarser in h.rollup_edges()
            if finer == level
        }
        for parent_level, parent_key in parents.items():
            if parent_level not in expected_parents:
                raise StorageError(
                    f"level {level!r} does not roll up to {parent_level!r}"
                )
            if parent_key not in self._levels.get(parent_level, {}):
                raise StorageError(
                    f"unknown parent member {parent_key!r} in level "
                    f"{parent_level!r} (insert coarser levels first)"
                )
        missing = expected_parents - set(parents)
        if missing:
            raise StorageError(
                f"member {key!r} of level {level!r} is missing parents for "
                f"{sorted(missing)}"
            )
        member = Member(level, key, attributes, parents)
        self._levels[level][key] = member
        return member

    def member(self, level: str, key: str) -> Member:
        try:
            return self._levels[level][key]
        except KeyError:
            raise StorageError(
                f"no member {key!r} in level {self.dimension.name}.{level}"
            ) from None

    def members(self, level: str) -> list[Member]:
        if level not in self._levels:
            raise StorageError(
                f"dimension {self.dimension.name!r} has no level {level!r}"
            )
        return list(self._levels[level].values())

    def size(self, level: str) -> int:
        return len(self._levels[level])

    def rollup(self, member: Member, target_level: str) -> Member:
        """Walk roll-up links from a member to its ancestor at a level."""
        if member.level == target_level:
            return member
        path = self.dimension.rollup_path(target_level)
        if member.level not in path:
            raise StorageError(
                f"cannot roll up from {member.level!r} to {target_level!r}: "
                f"no shared hierarchy path"
            )
        current = member
        start = path.index(member.level)
        for next_level in path[start + 1 :]:
            parent_key = current.parents.get(next_level)
            if parent_key is None:
                raise StorageError(
                    f"member {current.key!r} of level {current.level!r} has "
                    f"no parent at level {next_level!r}"
                )
            current = self.member(next_level, parent_key)
            if current.level == target_level:
                return current
        return current

    def geometry_of(self, member: Member) -> Geometry | None:
        return member.geometry

    def leaf_members(self) -> list[Member]:
        return self.members(self.dimension.leaf)

    def __repr__(self) -> str:
        sizes = {lv: len(members) for lv, members in self._levels.items()}
        return f"<DimensionTable {self.dimension.name} {sizes}>"


class FactTable:
    """Dictionary-encoded columnar fact storage (struct-of-arrays).

    Each dimension's key column is an ``array('i')`` of codes into an
    interned :class:`~repro.storage.columns.Dictionary`; each measure is
    an ``array('d')``.  Scans, filters and group-bys run over the dense
    arrays (:meth:`rows_matching`, :meth:`key_codes`,
    :meth:`measure_values`); the row-dict API (:meth:`row`,
    :meth:`coordinates`, :meth:`key_column`) decodes on demand as a
    compatibility view.
    """

    def __init__(self, fact: Fact) -> None:
        self.fact = fact
        #: dimension -> interned key dictionary; encode() only under _lock.
        self._dictionaries: dict[str, Dictionary] = {
            d: Dictionary() for d in fact.dimension_names
        }
        #: dimension -> append-only code column (codes index _dictionaries).
        self._codes: dict[str, array] = {
            d: array("i") for d in fact.dimension_names
        }
        self._measures: dict[str, array] = {m: array("d") for m in fact.measures}
        self._count = 0
        #: dimension -> {leaf key -> ascending row ids}; built lazily by
        #: :meth:`key_postings` and maintained incrementally on insert, so
        #: a built posting map never goes stale.  ``_lock`` linearizes
        #: inserts against posting builds: without it a build racing an
        #: insert from another session's request could install a map
        #: permanently missing (or double-counting) the new row.
        # guarded-by: _lock
        self._postings: dict[str, dict[str, list[int]]] = {}
        self._lock = make_lock("FactTable._lock")

    def insert(
        self,
        coordinates: Mapping[str, str],
        measures: Mapping[str, float],
    ) -> int:
        """Append one fact row; returns its row id."""
        return self.insert_many([(coordinates, measures)])[0]

    def insert_many(
        self,
        rows: Iterable[tuple[Mapping[str, str], Mapping[str, float]]],
    ) -> list[int]:
        """Append many ``(coordinates, measures)`` rows in one batch.

        All rows are validated before any is appended (all-or-nothing),
        and the whole batch shares one lock acquisition, one dictionary
        encode pass and one round of posting maintenance — the
        amortization that makes bulk loads and delta batches cheap.
        Returns the new row ids in input order.
        """
        dimension_names = set(self.fact.dimension_names)
        measure_names = set(self.fact.measures)
        prepared: list[tuple[Mapping[str, str], Mapping[str, float]]] = []
        for coordinates, measures in rows:
            if set(coordinates) != dimension_names:
                raise StorageError(
                    f"fact {self.fact.name!r} expects coordinates for "
                    f"{sorted(self.fact.dimension_names)}, got "
                    f"{sorted(coordinates)}"
                )
            if set(measures) != measure_names:
                raise StorageError(
                    f"fact {self.fact.name!r} expects measures "
                    f"{sorted(self.fact.measures)}, got {sorted(measures)}"
                )
            for measure_name, value in measures.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise StorageError(
                        f"measure {measure_name!r} expects a number, got "
                        f"{type(value).__name__}"
                    )
            prepared.append((coordinates, measures))
        if not prepared:
            return []
        with self._lock:
            first_row = self._count
            for dim_name in self.fact.dimension_names:
                encode = self._dictionaries[dim_name].encode
                self._codes[dim_name].extend(
                    encode(coordinates[dim_name]) for coordinates, _ in prepared
                )
            for measure_name, column in self._measures.items():
                column.extend(
                    float(measures[measure_name]) for _, measures in prepared
                )
            self._count += len(prepared)
            for dim_name, postings in self._postings.items():
                for offset, (coordinates, _) in enumerate(prepared):
                    postings.setdefault(coordinates[dim_name], []).append(
                        first_row + offset
                    )
        return list(range(first_row, first_row + len(prepared)))

    def __len__(self) -> int:
        return self._count

    def dictionary(self, dimension: str) -> Dictionary:
        """The interned key dictionary of one dimension column."""
        try:
            return self._dictionaries[dimension]
        except KeyError:
            raise StorageError(
                f"fact {self.fact.name!r} has no dimension {dimension!r}"
            ) from None

    def key_codes(self, dimension: str) -> array:
        """The live ``array('i')`` code column of one dimension.

        Append-only: snapshot ``len(table)`` first and slice/``islice``
        to that length for a consistent view under concurrent inserts.
        """
        try:
            return self._codes[dimension]
        except KeyError:
            raise StorageError(
                f"fact {self.fact.name!r} has no dimension {dimension!r}"
            ) from None

    def measure_values(self, measure: str) -> array:
        """The live ``array('d')`` column of one measure (append-only)."""
        try:
            return self._measures[measure]
        except KeyError:
            raise StorageError(
                f"fact {self.fact.name!r} has no measure {measure!r}"
            ) from None

    def key_column(self, dimension: str) -> list[str]:
        """Compatibility view: the decoded key column as a fresh list."""
        dictionary = self.dictionary(dimension)
        n = self._count
        return dictionary.decode_many(islice(self._codes[dimension], n))

    def key_postings(self, dimension: str) -> dict[str, list[int]]:
        """Inverted key column: ``leaf key -> ascending row ids``.

        Turns per-dimension fact filtering into posting-list unions and
        intersections instead of full-column scans.  Built on first use;
        :meth:`insert_many` appends to a built map, so callers may hold
        on to the returned mapping only within one request.
        """
        with self._lock:
            postings = self._postings.get(dimension)
            if postings is None:
                dictionary = self.dictionary(dimension)  # existence check
                postings = {}
                decode = dictionary.decode
                for row_id, code in enumerate(self._codes[dimension]):
                    postings.setdefault(decode(code), []).append(row_id)
                self._postings[dimension] = postings
        return postings

    def measure_column(self, measure: str) -> list[float]:
        """Compatibility view: the measure column as a fresh list."""
        values = self.measure_values(measure)
        return list(islice(values, self._count))

    def rows_matching(
        self,
        relevant: Mapping[str, Iterable[str]],
        row_ids: Sequence[int] | None = None,
    ) -> list[int]:
        """Row ids whose leaf key is allowed in *every* given dimension.

        ``relevant`` maps dimension -> allowed leaf keys (dimensions not
        present are unconstrained).  The full-table path evaluates each
        dimension as a byte mask over the code column and intersects the
        masks as big-int AND; with the numpy backend enabled the masks
        become fancy-indexed ``uint8`` gathers.  When ``row_ids`` is
        given, only those rows are tested (in input order) — the shape
        the incremental view patcher needs for small deltas.
        """
        n = self._count
        lookups: list[tuple[array, bytearray]] = []
        for dim_name, keys in relevant.items():
            dictionary = self.dictionary(dim_name)
            mask = dictionary.lookup_mask(keys)
            if 1 not in mask:
                return []  # no allowed key was ever interned: nothing matches
            lookups.append((self._codes[dim_name], mask))
        if row_ids is not None:
            if not lookups:
                return [row_id for row_id in row_ids if 0 <= row_id < n]
            return [
                row_id
                for row_id in row_ids
                if 0 <= row_id < n
                and all(mask[column[row_id]] for column, mask in lookups)
            ]
        if not lookups:
            return list(range(n))
        if n == 0:
            return []
        np = numpy_backend()
        if np is not None:
            hits = None
            for column, mask in lookups:
                # tobytes() snapshots atomically under the GIL; a zero-copy
                # frombuffer over the live column would export its buffer
                # and make a concurrent insert's resize raise BufferError.
                codes = np.frombuffer(column.tobytes(), dtype=np.intc, count=n)
                allowed = np.frombuffer(bytes(mask), dtype=np.uint8)
                hit = allowed[codes]
                hits = hit if hits is None else hits & hit
            return np.flatnonzero(hits).tolist()
        matched: int | None = None
        for column, mask in lookups:
            column_mask = bytes(map(mask.__getitem__, islice(column, n)))
            value = int.from_bytes(column_mask, "little")
            matched = value if matched is None else matched & value
        assert matched is not None
        return list(compress(range(n), matched.to_bytes(n, "little")))

    def coordinates(self, row_id: int) -> dict[str, str]:
        """One row's ``dimension -> leaf key`` mapping (no measures).

        The unit of the incremental view-maintenance delta protocol:
        patching a materialized view only needs the appended rows' keys,
        never their measures.
        """
        if not 0 <= row_id < self._count:
            raise StorageError(
                f"row id {row_id} out of range (0..{self._count - 1})"
            )
        return {
            dim: self._dictionaries[dim].decode(column[row_id])
            for dim, column in self._codes.items()
        }

    def row(self, row_id: int) -> dict[str, object]:
        if not 0 <= row_id < self._count:
            raise StorageError(
                f"row id {row_id} out of range (0..{self._count - 1})"
            )
        out: dict[str, object] = {
            dim: self._dictionaries[dim].decode(column[row_id])
            for dim, column in self._codes.items()
        }
        out.update(
            {measure: column[row_id] for measure, column in self._measures.items()}
        )
        return out

    def row_ids(self) -> range:
        return range(self._count)


class Feature:
    """One geographic feature of a thematic layer."""

    __slots__ = ("feature_id", "name", "geometry", "attributes")

    def __init__(
        self,
        feature_id: int,
        name: str,
        geometry: Geometry,
        attributes: Mapping[str, object] | None = None,
    ) -> None:
        self.feature_id = feature_id
        self.name = name
        self.geometry = geometry
        self.attributes = dict(attributes or {})

    def __repr__(self) -> str:
        return f"<Feature {self.name!r} #{self.feature_id}>"


class LayerTable:
    """Feature instances of one thematic layer, type-checked on insert."""

    def __init__(self, layer: Layer) -> None:
        self.layer = layer
        self._features: list[Feature] = []
        self._by_name: dict[str, Feature] = {}

    def add_feature(
        self,
        name: str,
        geometry: Geometry,
        attributes: Mapping[str, object] | None = None,
    ) -> Feature:
        if not self.layer.geometric_type.accepts(geometry):
            raise StorageError(
                f"layer {self.layer.name!r} is declared "
                f"{self.layer.geometric_type.name}; got a "
                f"{geometry.geom_type} for feature {name!r}"
            )
        if name in self._by_name:
            raise StorageError(
                f"layer {self.layer.name!r} already has a feature {name!r}"
            )
        feature = Feature(len(self._features), name, geometry, attributes)
        self._features.append(feature)
        self._by_name[name] = feature
        return feature

    def features(self) -> list[Feature]:
        return list(self._features)

    def feature(self, name: str) -> Feature:
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(
                f"layer {self.layer.name!r} has no feature {name!r}"
            ) from None

    def geometries(self) -> Iterator[Geometry]:
        for feature in self._features:
            yield feature.geometry

    def __len__(self) -> int:
        return len(self._features)

    def __repr__(self) -> str:
        return f"<LayerTable {self.layer.name} n={len(self._features)}>"
