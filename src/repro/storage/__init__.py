"""In-memory star-schema storage for (Geo)MD schemas.

Dimension tables with explicit roll-up links, columnar fact tables,
geographic layer tables, referential-integrity checks, roll-up caches
and JSON snapshot persistence.
"""

from repro.storage.snapshot import load_star, save_star, star_from_dict, star_to_dict
from repro.storage.star import StarMutation, StarSchema
from repro.storage.tables import (
    DimensionTable,
    FactTable,
    Feature,
    LayerTable,
    Member,
)

__all__ = [
    "DimensionTable",
    "FactTable",
    "Feature",
    "LayerTable",
    "Member",
    "StarMutation",
    "StarSchema",
    "load_star",
    "save_star",
    "star_from_dict",
    "star_to_dict",
]
