"""Dictionary encoding for the columnar fact storage.

A :class:`Dictionary` interns the member keys of one fact dimension:
each distinct key string is assigned a small integer *code* in
first-appearance order, and the fact table stores an ``array('i')`` of
codes instead of a list of strings.  Scans, roll-up translation and
selection masks then operate on dense integer columns (optionally as
numpy arrays, see :mod:`repro.vectorized`) while the row-dict API
decodes on demand.

Codes are append-only: a key, once interned, keeps its code for the
table's lifetime, so posting lists, translation tables and masks built
against a dictionary prefix stay valid as the dictionary grows.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import StorageError

__all__ = ["Dictionary"]


class Dictionary:
    """Append-only interned key dictionary: ``key <-> code``.

    Not internally locked: writers (:meth:`encode`) must serialize under
    the owning fact table's insert lock; readers are safe concurrently
    because both sides of the mapping only ever append.
    """

    __slots__ = ("_keys", "_codes")

    def __init__(self, keys: Iterable[str] = ()) -> None:
        #: code -> key (dense, append-only)
        self._keys: list[str] = []
        #: key -> code
        self._codes: dict[str, int] = {}
        for key in keys:
            self.encode(key)

    def encode(self, key: str) -> int:
        """Code of ``key``, interning it on first sight."""
        code = self._codes.get(key)
        if code is None:
            code = len(self._keys)
            self._keys.append(key)
            self._codes[key] = code
        return code

    def code_of(self, key: str) -> int | None:
        """Code of an already-interned key, or ``None``."""
        return self._codes.get(key)

    def decode(self, code: int) -> str:
        try:
            return self._keys[code]
        except IndexError:
            raise StorageError(
                f"dictionary has no code {code} (size {len(self._keys)})"
            ) from None

    def decode_many(self, codes: Iterable[int]) -> list[str]:
        """Decode a code column back to its key strings (compat views)."""
        keys = self._keys
        try:
            return [keys[code] for code in codes]
        except IndexError:
            raise StorageError(
                f"code column references a code beyond the dictionary "
                f"(size {len(keys)})"
            ) from None

    def codes_of(self, keys: Iterable[str]) -> set[int]:
        """Codes of the given keys, silently skipping unknown ones.

        A key that was never interned cannot appear in any code column,
        so dropping it from a filter set is exact, not lossy.
        """
        codes = self._codes
        out: set[int] = set()
        for key in keys:
            code = codes.get(key)
            if code is not None:
                out.add(code)
        return out

    def lookup_mask(self, keys: Iterable[str]) -> bytearray:
        """``code -> 0/1`` byte table for the given allowed keys.

        The unit of vectorized selection: applying a filter to a code
        column is ``map(mask.__getitem__, column)`` (or a numpy gather),
        never a per-row set lookup on strings.
        """
        mask = bytearray(len(self._keys))
        codes = self._codes
        for key in keys:
            code = codes.get(key)
            if code is not None:
                mask[code] = 1
        return mask

    def keys(self) -> list[str]:
        """The interned keys in code order (a copy)."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._keys))

    def __repr__(self) -> str:
        return f"<Dictionary n={len(self._keys)}>"
