"""The star schema: binding an (Geo)MD schema to its instance tables.

A :class:`StarSchema` owns one :class:`~repro.storage.tables.DimensionTable`
per dimension, one :class:`~repro.storage.tables.FactTable` per fact and one
:class:`~repro.storage.tables.LayerTable` per thematic layer.  It enforces
referential integrity (fact keys must reference leaf members) and geometry
conformance for spatial levels, and provides the roll-up caches the OLAP
engine relies on.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import StorageError
from repro.geomd.schema import GeoMDSchema
from repro.geometry import Geometry
from repro.mdm.model import MDSchema
from repro.storage.tables import DimensionTable, FactTable, Feature, LayerTable, Member

__all__ = ["StarSchema"]


class StarSchema:
    """Instance storage for one (Geo)MD schema."""

    def __init__(self, schema: MDSchema) -> None:
        self.schema = schema
        self._dimensions: dict[str, DimensionTable] = {
            name: DimensionTable(dim) for name, dim in schema.dimensions.items()
        }
        self._facts: dict[str, FactTable] = {
            name: FactTable(fact) for name, fact in schema.facts.items()
        }
        self._layers: dict[str, LayerTable] = {}
        if isinstance(schema, GeoMDSchema):
            for name, layer in schema.layers.items():
                self._layers[name] = LayerTable(layer)
        # (dimension, leaf_key, level) -> ancestor member; filled lazily.
        self._rollup_cache: dict[tuple[str, str, str], Member] = {}

    # -- access ---------------------------------------------------------------

    def dimension_table(self, name: str) -> DimensionTable:
        try:
            return self._dimensions[name]
        except KeyError:
            raise StorageError(
                f"star schema has no dimension table {name!r}; "
                f"available: {sorted(self._dimensions)}"
            ) from None

    def fact_table(self, name: str | None = None) -> FactTable:
        if name is None:
            if len(self._facts) != 1:
                raise StorageError(
                    f"star schema has {len(self._facts)} fact tables; "
                    f"name one explicitly"
                )
            return next(iter(self._facts.values()))
        try:
            return self._facts[name]
        except KeyError:
            raise StorageError(
                f"star schema has no fact table {name!r}; "
                f"available: {sorted(self._facts)}"
            ) from None

    def layer_table(self, name: str) -> LayerTable:
        try:
            return self._layers[name]
        except KeyError:
            raise StorageError(
                f"star schema has no layer table {name!r}; "
                f"available: {sorted(self._layers)}"
            ) from None

    @property
    def layer_tables(self) -> dict[str, LayerTable]:
        return dict(self._layers)

    def ensure_layer_table(self, name: str) -> LayerTable:
        """Create the table for a layer added to the schema after binding.

        Schema personalization can run ``AddLayer`` on a star that is
        already loaded; the engine then materializes the table here.
        """
        if name in self._layers:
            return self._layers[name]
        if not isinstance(self.schema, GeoMDSchema):
            raise StorageError(
                "cannot add a layer table to a non-GeoMD star schema"
            )
        layer = self.schema.layer(name)
        table = LayerTable(layer)
        self._layers[name] = table
        return table

    # -- loading ----------------------------------------------------------------

    def add_member(
        self,
        dimension: str,
        level: str,
        key: str,
        attributes: Mapping[str, object] | None = None,
        parents: Mapping[str, str] | None = None,
    ) -> Member:
        member = self.dimension_table(dimension).add_member(
            level, key, attributes, parents
        )
        self._check_member_geometry(dimension, level, member)
        return member

    def _check_member_geometry(
        self, dimension: str, level: str, member: Member
    ) -> None:
        if not isinstance(self.schema, GeoMDSchema):
            return
        ref = f"{dimension}.{level}"
        if ref not in self.schema.spatial_levels:
            return
        geometry = member.geometry
        if geometry is None:
            return  # levels may be spatialized before data is backfilled
        declared = self.schema.spatial_levels[ref]
        if not declared.accepts(geometry):
            raise StorageError(
                f"member {member.key!r} of spatial level {ref} carries a "
                f"{geometry.geom_type}, but the level is declared "
                f"{declared.name}"
            )

    def insert_fact(
        self,
        fact: str,
        coordinates: Mapping[str, str],
        measures: Mapping[str, float],
    ) -> int:
        """Insert a fact row, checking every key against the leaf members."""
        table = self.fact_table(fact)
        for dim_name, key in coordinates.items():
            dim_table = self.dimension_table(dim_name)
            leaf = dim_table.dimension.leaf
            try:
                dim_table.member(leaf, key)
            except StorageError:
                raise StorageError(
                    f"fact {fact!r}: unknown {dim_name!r} leaf member {key!r}"
                ) from None
        return table.insert(coordinates, measures)

    def add_feature(
        self,
        layer: str,
        name: str,
        geometry: Geometry,
        attributes: Mapping[str, object] | None = None,
    ) -> Feature:
        return self.layer_table(layer).add_feature(name, geometry, attributes)

    # -- roll-up ------------------------------------------------------------------

    def rollup_member(self, dimension: str, leaf_key: str, level: str) -> Member:
        """Ancestor of a leaf member at ``level`` (cached)."""
        cache_key = (dimension, leaf_key, level)
        cached = self._rollup_cache.get(cache_key)
        if cached is not None:
            return cached
        table = self.dimension_table(dimension)
        leaf_member = table.member(table.dimension.leaf, leaf_key)
        ancestor = table.rollup(leaf_member, level)
        self._rollup_cache[cache_key] = ancestor
        return ancestor

    def leaf_keys_rolled_to(
        self, dimension: str, level: str, member_keys: Iterable[str]
    ) -> set[str]:
        """Leaf member keys whose ancestor at ``level`` is in ``member_keys``."""
        wanted = set(member_keys)
        table = self.dimension_table(dimension)
        out: set[str] = set()
        for leaf in table.leaf_members():
            if self.rollup_member(dimension, leaf.key, level).key in wanted:
                out.add(leaf.key)
        return out

    # -- statistics -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Row counts per table (used by reports and benchmarks)."""
        out: dict[str, int] = {}
        for name, table in self._dimensions.items():
            for level in table.dimension.levels:
                out[f"dim:{name}.{level}"] = table.size(level)
        for name, fact_table in self._facts.items():
            out[f"fact:{name}"] = len(fact_table)
        for name, layer_table in self._layers.items():
            out[f"layer:{name}"] = len(layer_table)
        return out

    def __repr__(self) -> str:
        facts = {name: len(t) for name, t in self._facts.items()}
        return f"<StarSchema {self.schema.name} facts={facts}>"
