"""The star schema: binding an (Geo)MD schema to its instance tables.

A :class:`StarSchema` owns one :class:`~repro.storage.tables.DimensionTable`
per dimension, one :class:`~repro.storage.tables.FactTable` per fact and one
:class:`~repro.storage.tables.LayerTable` per thematic layer.  It enforces
referential integrity (fact keys must reference leaf members) and geometry
conformance for spatial levels, and provides the roll-up caches the OLAP
engine relies on.

Generation-based invalidation
-----------------------------

The star is the shared substrate of every cache in the hot request path
(memoized personalized views, the service query cache, the lazy indexes
below), so it carries a monotonically-increasing :attr:`~StarSchema.generation`
counter.  Every mutation — member/fact/feature inserts, layer-table
creation, schema personalization reported through
:meth:`note_schema_change` — bumps it; downstream caches store the
generation they were built at and treat any difference as a miss.  The
lazy structures owned here (the inverted roll-up index, the leaf-code
roll-up translation tables, the per-layer and per-level
:class:`~repro.geometry.index.EnvelopeColumns` envelope columns) are
instead invalidated *in place* by the same hooks, so they can never
serve stale data.  Setting :attr:`~StarSchema.use_indexes` to ``False`` routes every
consumer back to the plain scans (used by the benchmark harness to prove
the fast paths are transparent).

The mutation log
----------------

On top of the per-kind counters every ``note_*_change`` appends a typed
:class:`StarMutation` — now carrying the actual delta payload where the
caller can name it — to a bounded, generation-ordered :class:`MutationLog`
owned by the star.  Listeners still receive each mutation exactly once
(outside the lock), but the log is the durable record: downstream layers
patch instead of blanket-invalidating, and
:class:`repro.storage.snapshot.StarHistory` replays the retained suffix
over generation-stamped checkpoints to answer ``as_of`` reads against a
past generation.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.concurrency import make_rlock
from repro.errors import StorageError
from repro.geomd.schema import GeoMDSchema
from repro.geometry import Geometry
from repro.geometry.index import EnvelopeColumns
from repro.mdm.model import MDSchema
from repro.storage.tables import DimensionTable, FactTable, Feature, LayerTable, Member

__all__ = [
    "MutationLog",
    "StarMutation",
    "StarSchema",
    "freeze_payload",
    "thaw_payload",
]


def freeze_payload(mapping: Mapping[str, object] | None) -> tuple:
    """Deep-freeze a delta payload into nested sorted tuples.

    :class:`StarMutation` is frozen and cached/logged, so its payload must
    be immutable too: mappings become ``((key, value), ...)`` sorted by
    key, sequences become tuples.  Geometries pass through untouched —
    they are already immutable value objects.
    """
    if not mapping:
        return ()
    return tuple(sorted((key, _freeze_value(value)) for key, value in mapping.items()))


def _freeze_value(value: object) -> object:
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze_value(v) for v in value)
    return value


def thaw_payload(payload: tuple) -> dict[str, object]:
    """Inverse of :func:`freeze_payload` for the top level.

    Nested frozen mappings stay as item tuples; use :func:`thaw_mapping`
    on individual fields whose original shape was a mapping.
    """
    return dict(payload)


def thaw_mapping(value: object) -> dict:
    """Rebuild a mapping field frozen by :func:`freeze_payload`."""
    if isinstance(value, tuple):
        return dict(value)
    if isinstance(value, Mapping):
        return dict(value)
    return {}


@dataclass(frozen=True)
class StarMutation:
    """Typed description of one star mutation, logged and delivered to listeners.

    ``generation`` is the star generation *after* the mutation.  Fact
    appends carry the appended ``row_ids``; member/feature adds and
    schema personalization patches carry their delta in ``payload``
    (a :func:`freeze_payload` tuple) tagged by ``op``.  Downstream caches
    patch through these deltas; a mutation whose caller could not name
    the delta (``op is None``) degrades to the pre-log behaviour — a
    full invalidation of the affected scope.
    """

    kind: str  # "member" | "fact" | "feature" | "schema"
    generation: int
    dimension: str | None = None
    layer: str | None = None
    fact: str | None = None
    row_ids: tuple[int, ...] = ()
    op: str | None = None  # "add" | "update" | "append" | "add_layer" | "become_spatial"
    payload: tuple = ()

    @property
    def is_fact_delta(self) -> bool:
        """True when this mutation can be applied as an incremental patch."""
        return self.kind == "fact" and self.fact is not None and bool(self.row_ids)

    @property
    def is_member_add(self) -> bool:
        """True for a member insert carrying its full delta (new leaf/ancestor)."""
        return self.kind == "member" and self.op == "add" and bool(self.payload)

    @property
    def is_feature_add(self) -> bool:
        """True for a single-feature insert carrying its geometry delta."""
        return self.kind == "feature" and self.op == "add" and bool(self.payload)

    @property
    def is_feature_bulk(self) -> bool:
        """True for a bulk feature load carrying every loaded feature."""
        return self.kind == "feature" and self.op == "bulk" and bool(self.payload)

    @property
    def is_schema_patch(self) -> bool:
        """True for an AddLayer/BecomeSpatial patch carrying its arguments."""
        return (
            self.kind == "schema"
            and self.op in ("add_layer", "become_spatial")
            and bool(self.payload)
        )

    @property
    def is_replayable(self) -> bool:
        """True when :class:`repro.storage.snapshot.StarHistory` can replay this.

        Non-replayable mutations (in-place member updates, payload-less
        degradations) force an eager checkpoint so as-of reads stay
        answerable across them.
        """
        return (
            self.is_fact_delta
            or self.is_member_add
            or self.is_feature_add
            or self.is_feature_bulk
            or self.is_schema_patch
        )

    def payload_dict(self) -> dict[str, object]:
        """The delta payload as a plain dict (top level only)."""
        return thaw_payload(self.payload)


class MutationLog:
    """Bounded, generation-ordered log of one star's typed mutations.

    Appended by the star inside its cache lock (so entries are strictly
    ordered by generation) and read by :class:`repro.storage.snapshot.StarHistory`
    replay, the health endpoint and the cluster mutation-event codec.
    Eviction drops the oldest entries; per-kind counters are cumulative
    and survive eviction.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise StorageError("MutationLog needs max_entries >= 1")
        self.max_entries = max_entries
        self._lock = make_rlock("MutationLog._lock")
        # guarded-by: _lock
        self._entries: deque[StarMutation] = deque()
        # kind -> cumulative count (never decremented on eviction).
        # guarded-by: _lock
        self._kind_counts: dict[str, int] = {}

    def append(self, mutation: StarMutation) -> None:
        with self._lock:
            self._entries.append(mutation)
            self._kind_counts[mutation.kind] = (
                self._kind_counts.get(mutation.kind, 0) + 1
            )
            while len(self._entries) > self.max_entries:
                self._entries.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def oldest_generation(self) -> int | None:
        """Generation of the oldest retained entry (``None`` when empty)."""
        with self._lock:
            return self._entries[0].generation if self._entries else None

    @property
    def newest_generation(self) -> int | None:
        """Generation of the newest retained entry (``None`` when empty)."""
        with self._lock:
            return self._entries[-1].generation if self._entries else None

    def entries(self) -> list[StarMutation]:
        """Snapshot of the retained entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def between(self, start: int, end: int) -> list[StarMutation]:
        """Retained mutations with ``start < generation <= end``, in order."""
        with self._lock:
            return [m for m in self._entries if start < m.generation <= end]

    def since(self, generation: int) -> list[StarMutation]:
        """Retained mutations newer than ``generation``, in order."""
        with self._lock:
            return [m for m in self._entries if m.generation > generation]

    def kind_counts(self) -> dict[str, int]:
        """Cumulative mutation counts per kind (unaffected by eviction)."""
        with self._lock:
            return dict(self._kind_counts)

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "length": len(self._entries),
                "max_entries": self.max_entries,
                "kinds": dict(self._kind_counts),
                "oldest_generation": (
                    self._entries[0].generation if self._entries else None
                ),
                "newest_generation": (
                    self._entries[-1].generation if self._entries else None
                ),
                "replayable": sum(1 for m in self._entries if m.is_replayable),
            }

#: Sentinel distinguishing "not cached yet" from a cached ``None``
#: (an empty layer/level legitimately caches as ``None``).
_UNBUILT = object()


class _RollupTranslation:
    """Leaf-code → ancestor-ordinal table for one ``(fact, dimension, level)``.

    ``codes[leaf_code]`` is an index into ``keys``, the distinct ancestor
    keys at the target level in first-encounter order.  This is the unit
    of the vectorized group-by: translating a fact's code column through
    ``codes`` replaces one :meth:`StarSchema.rollup_member` call per row
    with one array gather per column.

    A table is immutable per member generation except for *growth*:
    when the fact dictionary interns new leaf keys, :meth:`extend`
    appends their translations under the star's cache lock.  ``codes``
    and ``keys`` are append-only, so unlocked readers holding a
    reference stay correct (their row snapshot only references the
    prefix that existed when they took it).
    """

    __slots__ = ("member_generation", "codes", "keys", "_ordinals")

    def __init__(self, member_generation: int) -> None:
        self.member_generation = member_generation
        self.codes = array("i")
        self.keys: list[str] = []
        self._ordinals: dict[str, int] = {}

    def extend(
        self, star: "StarSchema", table: FactTable, dimension: str, level: str
    ) -> None:
        """Translate any leaf codes interned since the last build.

        Must be called under the star's ``_cache_lock``; appends one
        entry per new dictionary code, resolving ancestry through the
        (cached) :meth:`StarSchema.rollup_member` path.
        """
        dictionary = table.dictionary(dimension)
        size = len(dictionary)
        while len(self.codes) < size:
            leaf_key = dictionary.decode(len(self.codes))
            ancestor_key = star.rollup_member(dimension, leaf_key, level).key
            ordinal = self._ordinals.get(ancestor_key)
            if ordinal is None:
                ordinal = len(self.keys)
                self.keys.append(ancestor_key)
                self._ordinals[ancestor_key] = ordinal
            self.codes.append(ordinal)


class StarSchema:
    """Instance storage for one (Geo)MD schema."""

    def __init__(self, schema: MDSchema) -> None:
        self.schema = schema
        self._dimensions: dict[str, DimensionTable] = {
            name: DimensionTable(dim) for name, dim in schema.dimensions.items()
        }
        self._facts: dict[str, FactTable] = {
            name: FactTable(fact) for name, fact in schema.facts.items()
        }
        self._layers: dict[str, LayerTable] = {}
        if isinstance(schema, GeoMDSchema):
            for name, layer in schema.layers.items():
                self._layers[name] = LayerTable(layer)
        # (dimension, leaf_key, level, member generation) -> ancestor
        # member; filled lazily.  The generation component keeps a
        # roll-up resolved before a member mutation from ever answering
        # after one; note_member_change also drops the dimension's
        # entries.
        # guarded-by: _cache_lock
        self._rollup_cache: dict[tuple[str, str, str, int], Member] = {}
        # dimension -> count of its member mutations.  Roll-up ancestry
        # depends only on a dimension's members, so its cache keys on
        # this instead of the global generation — fact appends and
        # schema/feature changes must not evict resolved roll-ups.
        # Member ADDs with a delta payload do NOT bump this: parent
        # links are fixed at creation and a new leaf is referenced by
        # no existing fact, so every resolved roll-up stays correct.
        self._member_generations: dict[str, int] = {}
        # fact name -> count of its appends; the query cache stamps
        # results with these so a member edit on one dimension does not
        # evict results over unrelated facts.
        self._fact_generations: dict[str, int] = {}
        # layer name -> count of its feature mutations.
        self._feature_generations: dict[str, int] = {}
        self._schema_generation = 0
        # Bumped by member/feature/schema mutations but NOT by fact
        # appends; the recommender's profile/suggestion memos key on
        # this (suggestions read members, layers and the journal —
        # never fact rows).
        self._metadata_generation = 0
        #: When False, every index-backed fast path falls back to the
        #: original scans (transparency switch for benchmarks/tests).
        self.use_indexes: bool = True
        #: When False, :func:`repro.olap.query.execute` routes to the
        #: row-loop reference executor instead of the columnar batch
        #: path (transparency switch for the identical-response gate).
        self.use_vectorized: bool = True
        #: Tri-state numpy override for this star's vectorized kernels:
        #: ``True``/``False`` force the backend on/off; ``None`` defers
        #: to the ``REPRO_NUMPY=1`` environment switch.
        self.use_numpy: bool | None = None
        self._generation = 0
        # (dimension, level) -> {ancestor key -> leaf keys}; lazy.
        # guarded-by: _cache_lock
        self._rollup_index: dict[tuple[str, str], dict[str, set[str]]] = {}
        # (fact, dimension, level) -> _RollupTranslation; lazy, stamped
        # with the dimension's member generation and extended in place
        # when the fact dictionary grows.
        # guarded-by: _cache_lock
        self._rollup_translations: dict[tuple[str, str, str], _RollupTranslation] = {}
        # layer name -> (EnvelopeColumns over feature ids, [geometries]) | None.
        # guarded-by: _cache_lock
        self._layer_grid: dict[str, object] = {}
        # (dimension, level) -> (EnvelopeColumns over member keys,
        #                        {member key -> geometry}) | None.
        # guarded-by: _cache_lock
        self._level_grid: dict[tuple[str, str], object] = {}
        #: Linearizes lazy index builds against the ``note_*_change``
        #: invalidation hooks.  The service only serializes requests
        #: per-session, so two sessions of one tenant can race a build
        #: against a mutation; without the lock the loser could install
        #: a permanently stale index.
        # An RLock: rollup_member guards its cache store with it and is
        # also called from rollup_index's build, which already holds it.
        self._cache_lock = make_rlock("StarSchema._cache_lock")
        #: Observers of every mutation, called with a :class:`StarMutation`
        #: *outside* ``_cache_lock`` (listeners may take their own locks
        #: and read the star back).  The engine's shared view store
        #: subscribes here to patch or invalidate materialized views.
        self._mutation_listeners: list[Callable[[StarMutation], None]] = []
        #: Ordered, bounded log of every mutation; appended inside
        #: ``_cache_lock`` so entries are strictly generation-ordered
        #: even when listeners race.
        self.mutation_log = MutationLog()
        #: Set by :meth:`repro.storage.snapshot.StarHistory.attach`;
        #: ``None`` until a history is attached (as-of reads then fail
        #: with a clear error instead of silently serving live data).
        self.history = None

    # -- cache invalidation ---------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic data version; bumped by every mutation."""
        return self._generation

    @property
    def metadata_generation(self) -> int:
        """Version of everything but fact rows (members, features, schema)."""
        return self._metadata_generation

    @property
    def schema_generation(self) -> int:
        """Count of schema personalization patches (AddLayer/BecomeSpatial)."""
        return self._schema_generation

    def member_generation(self, dimension: str) -> int:
        """Count of one dimension's cache-invalidating member mutations."""
        return self._member_generations.get(dimension, 0)

    def fact_generation(self, fact: str) -> int:
        """Count of one fact table's append batches."""
        return self._fact_generations.get(fact, 0)

    def feature_generation(self, layer: str) -> int:
        """Count of one layer's feature mutations."""
        return self._feature_generations.get(layer, 0)

    def add_mutation_listener(
        self, listener: Callable[[StarMutation], None]
    ) -> None:
        """Register an observer of every ``note_*_change`` mutation."""
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(
        self, listener: Callable[[StarMutation], None]
    ) -> None:
        """Deregister a mutation observer (no-op when absent).

        The star holds a strong reference to each listener; a caller
        replacing an engine over a live star should detach the old one so
        its view store stops being maintained (and can be collected).
        """
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, mutation: StarMutation) -> None:
        for listener in self._mutation_listeners:
            listener(mutation)

    def note_member_change(
        self,
        dimension: str,
        *,
        op: str | None = None,
        payload: Mapping[str, object] | None = None,
    ) -> None:
        """Record a member mutation; patch or invalidate the dimension's caches.

        Called on member inserts and on in-place member mutation (the
        ``BecomeSpatial`` geometry backfill writes member attributes
        directly).  ``op="add"`` with a ``{"level", "key", ...}`` payload
        is the additive fast path: parent links are fixed at member
        creation and a brand-new member is referenced by no existing
        fact row, so every resolved roll-up stays correct — the inverted
        roll-up index is extended in place, only the added level's
        envelope grid is dropped, and the dimension's member generation
        does **not** bump (translation tables and roll-up caches
        survive).  Any other ``op`` (or none) keeps the original
        behaviour: full invalidation of the dimension's derived caches.
        """
        frozen = freeze_payload(payload)
        details = dict(frozen)
        additive = op == "add" and "level" in details and "key" in details
        with self._cache_lock:
            self._generation += 1
            generation = self._generation
            self._metadata_generation += 1
            if additive:
                self._patch_member_add(
                    dimension, str(details["level"]), str(details["key"])
                )
            else:
                self._member_generations[dimension] = (
                    self._member_generations.get(dimension, 0) + 1
                )
                for key in [k for k in self._rollup_index if k[0] == dimension]:
                    del self._rollup_index[key]
                for key in [
                    k for k in self._rollup_translations if k[1] == dimension
                ]:
                    del self._rollup_translations[key]
                for key in [k for k in self._level_grid if k[0] == dimension]:
                    del self._level_grid[key]
                # The roll-up member cache is generation-keyed, so stale
                # entries can no longer *hit* — dropping the dimension's
                # entries here just keeps dead generations from accumulating.
                for key in [k for k in self._rollup_cache if k[0] == dimension]:
                    del self._rollup_cache[key]
            mutation = StarMutation(
                kind="member",
                generation=generation,
                dimension=dimension,
                op=op,
                payload=frozen,
            )
            self.mutation_log.append(mutation)
        self._notify(mutation)

    def _patch_member_add(self, dimension: str, level: str, key: str) -> None:  # guarded-by-caller: _cache_lock
        """Extend the dimension's lazy caches for one added member.

        Must be called under ``_cache_lock``.  A new leaf joins every
        built inverted index for its dimension; a new non-leaf member
        has no leaf descendants yet, so the indexes need no entry
        (readers fall back to an empty set).  Only the added level's
        envelope grid is rebuilt.
        """
        table = self.dimension_table(dimension)
        if level == table.dimension.leaf:
            for (dim, target_level), index in list(self._rollup_index.items()):
                if dim != dimension:
                    continue
                try:
                    ancestor = self.rollup_member(dimension, key, target_level)
                except StorageError:
                    # No ancestry path at this level — degrade this one
                    # index to a lazy rebuild rather than guessing.
                    del self._rollup_index[(dim, target_level)]
                    continue
                index.setdefault(ancestor.key, set()).add(key)
        self._level_grid.pop((dimension, level), None)

    def note_fact_change(
        self, fact: str | None = None, row_ids: Iterable[int] = ()
    ) -> None:
        """Record a fact insert (postings update themselves incrementally).

        ``fact``/``row_ids`` describe the appended rows; listeners use the
        delta for incremental view maintenance.  Callers that cannot name
        what changed may still call with no arguments — the mutation then
        degrades to a full invalidation downstream.
        """
        with self._cache_lock:
            self._generation += 1
            generation = self._generation
            if fact is not None:
                self._fact_generations[fact] = (
                    self._fact_generations.get(fact, 0) + 1
                )
            else:
                for name in self._facts:
                    self._fact_generations[name] = (
                        self._fact_generations.get(name, 0) + 1
                    )
            mutation = StarMutation(
                kind="fact",
                generation=generation,
                fact=fact,
                row_ids=tuple(row_ids),
                op="append" if fact is not None else None,
            )
            self.mutation_log.append(mutation)
        self._notify(mutation)

    def note_feature_change(
        self,
        layer: str,
        *,
        op: str | None = None,
        payload: Mapping[str, object] | None = None,
    ) -> None:
        """Record a feature mutation; patch or drop the layer's envelope grid.

        ``op="add"`` with a ``{"name", "geometry", ...}`` payload extends
        a built :class:`~repro.geometry.index.EnvelopeColumns` grid in
        place instead of dropping it; bulk loads (no payload) keep the
        original drop-and-rebuild.  Layers are append-only, so posting
        lists and view row sets are never affected either way.
        """
        frozen = freeze_payload(payload)
        details = dict(frozen)
        additive = op == "add" and "geometry" in details
        with self._cache_lock:
            self._generation += 1
            generation = self._generation
            self._metadata_generation += 1
            self._feature_generations[layer] = (
                self._feature_generations.get(layer, 0) + 1
            )
            if additive:
                self._patch_feature_add(layer, details["geometry"])
            else:
                self._layer_grid.pop(layer, None)
            mutation = StarMutation(
                kind="feature",
                generation=generation,
                layer=layer,
                op=op,
                payload=frozen,
            )
            self.mutation_log.append(mutation)
        self._notify(mutation)

    def _patch_feature_add(self, layer: str, geometry: object) -> None:  # guarded-by-caller: _cache_lock
        """Append one feature's envelope to a built layer grid, in place.

        Must be called under ``_cache_lock``.  An unbuilt grid stays
        unbuilt; a grid cached as ``None`` (layer was empty) is dropped
        so the next read builds it over the now non-empty layer.
        """
        cached = self._layer_grid.get(layer, _UNBUILT)
        if cached is _UNBUILT:
            return
        if cached is None or not isinstance(geometry, Geometry):
            self._layer_grid.pop(layer, None)
            return
        index, geometries = cached  # type: ignore[misc]
        position = len(geometries)
        geometries.append(geometry)
        index.extend([(geometry, position)])

    def note_schema_change(
        self,
        *,
        op: str | None = None,
        payload: Mapping[str, object] | None = None,
    ) -> None:
        """Record a schema mutation (AddLayer / BecomeSpatial).

        ``op``/``payload`` carry the personalization patch arguments
        (layer or level reference plus geometric type name) so the
        mutation log can replay the patch for as-of reads.
        """
        frozen = freeze_payload(payload)
        with self._cache_lock:
            self._generation += 1
            generation = self._generation
            self._metadata_generation += 1
            self._schema_generation += 1
            mutation = StarMutation(
                kind="schema", generation=generation, op=op, payload=frozen
            )
            self.mutation_log.append(mutation)
        self._notify(mutation)

    # -- access ---------------------------------------------------------------

    def dimension_table(self, name: str) -> DimensionTable:
        try:
            return self._dimensions[name]
        except KeyError:
            raise StorageError(
                f"star schema has no dimension table {name!r}; "
                f"available: {sorted(self._dimensions)}"
            ) from None

    def fact_table(self, name: str | None = None) -> FactTable:
        if name is None:
            if len(self._facts) != 1:
                raise StorageError(
                    f"star schema has {len(self._facts)} fact tables; "
                    f"name one explicitly"
                )
            return next(iter(self._facts.values()))
        try:
            return self._facts[name]
        except KeyError:
            raise StorageError(
                f"star schema has no fact table {name!r}; "
                f"available: {sorted(self._facts)}"
            ) from None

    def layer_table(self, name: str) -> LayerTable:
        try:
            return self._layers[name]
        except KeyError:
            raise StorageError(
                f"star schema has no layer table {name!r}; "
                f"available: {sorted(self._layers)}"
            ) from None

    @property
    def layer_tables(self) -> dict[str, LayerTable]:
        return dict(self._layers)

    def ensure_layer_table(self, name: str) -> LayerTable:
        """Create the table for a layer added to the schema after binding.

        Schema personalization can run ``AddLayer`` on a star that is
        already loaded; the engine then materializes the table here.
        """
        if name in self._layers:  # lint-ok: check-then-act - GIL-atomic fast path; the store below rechecks under the lock
            return self._layers[name]
        if not isinstance(self.schema, GeoMDSchema):
            raise StorageError(
                "cannot add a layer table to a non-GeoMD star schema"
            )
        layer = self.schema.layer(name)
        with self._cache_lock:
            table = self._layers.get(name)
            if table is None:
                table = LayerTable(layer)
                self._layers[name] = table
        self.note_schema_change(
            op="add_layer",
            payload={
                "layer": name,
                "geometric_type": layer.geometric_type.name,
            },
        )
        return table

    # -- loading ----------------------------------------------------------------

    def add_member(
        self,
        dimension: str,
        level: str,
        key: str,
        attributes: Mapping[str, object] | None = None,
        parents: Mapping[str, str] | None = None,
    ) -> Member:
        member = self.dimension_table(dimension).add_member(
            level, key, attributes, parents
        )
        self._check_member_geometry(dimension, level, member)
        self.note_member_change(
            dimension,
            op="add",
            payload={
                "level": level,
                "key": key,
                "attributes": dict(member.attributes),
                "parents": dict(member.parents),
            },
        )
        return member

    def _check_member_geometry(
        self, dimension: str, level: str, member: Member
    ) -> None:
        if not isinstance(self.schema, GeoMDSchema):
            return
        ref = f"{dimension}.{level}"
        if ref not in self.schema.spatial_levels:
            return
        geometry = member.geometry
        if geometry is None:
            return  # levels may be spatialized before data is backfilled
        declared = self.schema.spatial_levels[ref]
        if not declared.accepts(geometry):
            raise StorageError(
                f"member {member.key!r} of spatial level {ref} carries a "
                f"{geometry.geom_type}, but the level is declared "
                f"{declared.name}"
            )

    def insert_fact(
        self,
        fact: str,
        coordinates: Mapping[str, str],
        measures: Mapping[str, float],
    ) -> int:
        """Insert a fact row, checking every key against the leaf members."""
        return self.insert_facts(fact, [(coordinates, measures)])[0]

    def insert_facts(
        self,
        fact: str,
        rows: Iterable[tuple[Mapping[str, str], Mapping[str, float]]],
    ) -> list[int]:
        """Insert many ``(coordinates, measures)`` rows as one batch.

        Referential checks run once per distinct leaf key, the table
        append shares one lock acquisition (:meth:`FactTable.insert_many`),
        and downstream caches see ONE :class:`StarMutation` carrying the
        whole row-id delta — the shape the incremental view patcher and
        the bulk loaders want.  Returns the new row ids in input order.
        """
        table = self.fact_table(fact)
        rows = list(rows)
        leaf_levels: dict[str, tuple[DimensionTable, str]] = {}
        checked: dict[str, set[str]] = {}
        for coordinates, _measures in rows:
            for dim_name, key in coordinates.items():
                cached = leaf_levels.get(dim_name)
                if cached is None:
                    dim_table = self.dimension_table(dim_name)
                    cached = (dim_table, dim_table.dimension.leaf)
                    leaf_levels[dim_name] = cached
                    checked[dim_name] = set()
                if key in checked[dim_name]:
                    continue
                dim_table, leaf = cached
                try:
                    dim_table.member(leaf, key)
                except StorageError:
                    raise StorageError(
                        f"fact {fact!r}: unknown {dim_name!r} leaf member "
                        f"{key!r}"
                    ) from None
                checked[dim_name].add(key)
        row_ids = table.insert_many(rows)
        if row_ids:
            self.note_fact_change(table.fact.name, tuple(row_ids))
        return row_ids

    def add_feature(
        self,
        layer: str,
        name: str,
        geometry: Geometry,
        attributes: Mapping[str, object] | None = None,
    ) -> Feature:
        feature = self.layer_table(layer).add_feature(name, geometry, attributes)
        self.note_feature_change(
            layer,
            op="add",
            payload={
                "name": name,
                "geometry": geometry,
                "attributes": dict(feature.attributes),
            },
        )
        return feature

    # -- roll-up ------------------------------------------------------------------

    def rollup_member(self, dimension: str, leaf_key: str, level: str) -> Member:
        """Ancestor of a leaf member at ``level`` (cached per member generation)."""
        member_generation = self._member_generations.get(dimension, 0)
        cache_key = (dimension, leaf_key, level, member_generation)
        cached = self._rollup_cache.get(cache_key)  # lint-ok: lock-guard, check-then-act - GIL-atomic fast path; the store below rechecks under the lock
        if cached is not None:
            return cached
        table = self.dimension_table(dimension)
        leaf_member = table.member(table.dimension.leaf, leaf_key)
        ancestor = table.rollup(leaf_member, level)
        with self._cache_lock:
            self._rollup_cache.setdefault(cache_key, ancestor)
        return ancestor

    def rollup_index(self, dimension: str, level: str) -> dict[str, set[str]]:
        """Inverted roll-up map: ``ancestor key at level -> leaf keys``.

        Built lazily from one pass over the leaf members and invalidated
        by :meth:`note_member_change`; turns roll-up filtering from an
        O(leaf-members) scan per query into dict lookups.
        """
        cache_key = (dimension, level)
        # Read and build under the cache lock (an RLock, so the nested
        # rollup_member calls re-enter it): the unlocked double-checked
        # fast path this used to have was grandfathered in the lint
        # baseline and is retired — the lock is uncontended in steady
        # state and a dict .get under it costs the same dict .get.
        with self._cache_lock:
            index = self._rollup_index.get(cache_key)
            if index is None:
                table = self.dimension_table(dimension)
                index = {}
                for leaf in table.leaf_members():
                    ancestor = self.rollup_member(dimension, leaf.key, level)
                    index.setdefault(ancestor.key, set()).add(leaf.key)
                self._rollup_index[cache_key] = index
        return index

    def rollup_translation(
        self, fact: str, dimension: str, level: str
    ) -> _RollupTranslation:
        """Leaf-code → ancestor-ordinal table for one fact dimension.

        The vectorized group-by's unit: ``table.codes`` maps every code
        of the fact's ``dimension`` dictionary to an ordinal into
        ``table.keys`` (distinct ancestor keys at ``level``).  Stamped
        with the dimension's member generation like the roll-up caches;
        a member mutation rebuilds it, a dictionary growth (fact
        appends interning new leaf keys) extends it in place.
        """
        cache_key = (fact, dimension, level)
        table = self.fact_table(fact)
        dictionary = table.dictionary(dimension)
        member_generation = self._member_generations.get(dimension, 0)
        translation = self._rollup_translations.get(cache_key)  # lint-ok: lock-guard, check-then-act - GIL-atomic fast path; the store below rechecks under the lock
        if (
            translation is not None
            and translation.member_generation == member_generation
            and len(translation.codes) >= len(dictionary)
        ):
            return translation
        with self._cache_lock:
            member_generation = self._member_generations.get(dimension, 0)
            translation = self._rollup_translations.get(cache_key)
            if (
                translation is None
                or translation.member_generation != member_generation
            ):
                translation = _RollupTranslation(member_generation)
                self._rollup_translations[cache_key] = translation
            translation.extend(self, table, dimension, level)
        return translation

    def leaf_keys_rolled_to(
        self, dimension: str, level: str, member_keys: Iterable[str]
    ) -> set[str]:
        """Leaf member keys whose ancestor at ``level`` is in ``member_keys``."""
        if self.use_indexes:
            index = self.rollup_index(dimension, level)
            out: set[str] = set()
            for key in member_keys:
                out.update(index.get(key, ()))
            return out
        wanted = set(member_keys)
        table = self.dimension_table(dimension)
        out = set()
        for leaf in table.leaf_members():
            if self.rollup_member(dimension, leaf.key, level).key in wanted:
                out.add(leaf.key)
        return out

    # -- lazy spatial indexes -----------------------------------------------------

    def layer_grid_index(
        self, name: str
    ) -> tuple[EnvelopeColumns, list[Geometry]] | None:
        """Cached envelope columns over one layer's features (``None`` if empty).

        Returns ``(index, geometries)`` where the index items are positions
        into ``geometries``.  The index is an
        :class:`~repro.geometry.index.EnvelopeColumns` — four parallel
        coordinate arrays whose envelope query is a vectorized range
        test.  Invalidated by :meth:`note_feature_change`.
        """
        with self._cache_lock:
            cached = self._layer_grid.get(name, _UNBUILT)
            if cached is _UNBUILT:
                table = self.layer_table(name)
                geometries = [f.geometry for f in table.features()]
                if geometries:
                    index = EnvelopeColumns(
                        [(g, i) for i, g in enumerate(geometries)]
                    )
                    cached = (index, geometries)
                else:
                    cached = None
                self._layer_grid[name] = cached
        return cached  # type: ignore[return-value]

    def level_grid_index(
        self, dimension: str, level: str
    ) -> tuple[EnvelopeColumns, dict[str, Geometry]] | None:
        """Cached envelope columns over a level's geometry-bearing members.

        Returns ``(index, {member key -> geometry})`` (index items are the
        member keys), or ``None`` when no member of the level carries a
        geometry yet.  Invalidated by :meth:`note_member_change`.
        """
        cache_key = (dimension, level)
        with self._cache_lock:
            cached = self._level_grid.get(cache_key, _UNBUILT)
            if cached is _UNBUILT:
                table = self.dimension_table(dimension)
                entries: list[tuple[Geometry, str]] = []
                for member in table.members(level):
                    geometry = member.geometry
                    if geometry is not None:
                        entries.append((geometry, member.key))
                if entries:
                    cached = (
                        EnvelopeColumns(entries),
                        {key: geometry for geometry, key in entries},
                    )
                else:
                    cached = None
                self._level_grid[cache_key] = cached
        return cached  # type: ignore[return-value]

    # -- statistics -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Row counts per table (used by reports and benchmarks)."""
        out: dict[str, int] = {}
        for name, table in self._dimensions.items():
            for level in table.dimension.levels:
                out[f"dim:{name}.{level}"] = table.size(level)
        for name, fact_table in self._facts.items():
            out[f"fact:{name}"] = len(fact_table)
        for name, layer_table in self._layers.items():
            out[f"layer:{name}"] = len(layer_table)
        return out

    def __repr__(self) -> str:
        facts = {name: len(t) for name, t in self._facts.items()}
        return f"<StarSchema {self.schema.name} facts={facts}>"
