"""The SUS (Spatial-aware User model) UML profile — Fig. 3 of the paper.

"The different criteria considered in the user model are defined as an
extension of the UML class and property concepts.  There have been defined
different stereotypes for representing the different types of criteria
(i.e. «Characteristic», «LocationContext») ... the user and the session
are also defined extending the UML class concept with the stereotypes
«User» and «Session» respectively.  Finally, the events representing the
spatial instance selections performed by users are also defined as new
stereotype «SpatialSelection»."
"""

from __future__ import annotations

import enum

from repro.geomd.gtypes_enum import geometric_types_enumeration
from repro.uml.core import Model, Profile, Stereotype

__all__ = ["SUSStereotype", "sus_profile", "sus_metamodel"]


class SUSStereotype(enum.Enum):
    """The class stereotypes a user-model class can carry."""

    USER = "User"
    SESSION = "Session"
    CHARACTERISTIC = "Characteristic"
    LOCATION_CONTEXT = "LocationContext"
    SPATIAL_SELECTION = "SpatialSelection"


def sus_profile() -> Profile:
    """The SUS profile: one stereotype per user-model concern."""
    return Profile(
        "SUS",
        [Stereotype(st.value, "Class") for st in SUSStereotype],
    )


def sus_metamodel() -> Model:
    """The profile packaged as a UML model with the GeometricTypes enum.

    This is the artifact of Fig. 3 itself (the *metamodel* level): the
    stereotype set plus the enumeration of allowed geometric primitives.
    FIG3 integration tests assert on its rendering.
    """
    model = Model("SpatialAwareUserModelProfile")
    model.apply_profile(sus_profile())
    model.add_enumeration(geometric_types_enumeration())
    return model
