"""Spatial-aware user model (the SUS profile of Fig. 3 / Fig. 4).

User-model schemas with stereotyped classes and navigable associations,
runtime user profiles with session/location context and SpatialSelection
interest counters, and UML export for figure regeneration.
"""

from repro.sus.model import UserAssociation, UserClass, UserModelSchema, UserProfile
from repro.sus.profile import SUSStereotype, sus_metamodel, sus_profile

__all__ = [
    "SUSStereotype",
    "UserAssociation",
    "UserClass",
    "UserModelSchema",
    "UserProfile",
    "sus_metamodel",
    "sus_profile",
]
