"""Typed user-model schemas and runtime user profiles.

Two levels, mirroring the paper's Fig. 4:

* :class:`UserModelSchema` — the *structure* of the data required for
  personalization: stereotyped classes (User / Session / Characteristic /
  LocationContext / SpatialSelection) with typed properties and
  associations navigable by role name (``dm2role``, ``s2location``...);
* :class:`UserProfile` — one user's *instance* of that schema, updated
  during the lifetime of the system: attribute values, the current
  analysis session with its geographic location, and the interest degrees
  accumulated by SpatialSelection tracking rules.

PRML ``SUS.`` path expressions resolve against the schema and evaluate
against the profile; "the source concept is always the user class"
(Section 4.2.2).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import UserModelError
from repro.geometry import Geometry, Point
from repro.sus.profile import SUSStereotype, sus_profile
from repro.uml.core import (
    Association,
    AssociationEnd,
    DataType,
    GEOMETRY,
    INTEGER,
    Model,
    Property,
    UMLClass,
)

__all__ = ["UserClass", "UserAssociation", "UserModelSchema", "UserProfile"]


class UserClass:
    """A stereotyped class of the user model."""

    def __init__(
        self,
        name: str,
        stereotype: SUSStereotype,
        properties: Mapping[str, DataType] | None = None,
        defaults: Mapping[str, object] | None = None,
    ) -> None:
        if not name:
            raise UserModelError("user-model classes require a name")
        self.name = name
        self.stereotype = stereotype
        self.properties: dict[str, DataType] = dict(properties or {})
        self.defaults: dict[str, object] = dict(defaults or {})
        if stereotype is SUSStereotype.SPATIAL_SELECTION:
            # SpatialSelection classes store "the number of times it is
            # performed" (Section 4.1) in a degree counter.
            self.properties.setdefault("degree", INTEGER)
            self.defaults.setdefault("degree", 0)
        if stereotype is SUSStereotype.LOCATION_CONTEXT:
            self.properties.setdefault("geometry", GEOMETRY)
        for prop in self.defaults:
            if prop not in self.properties:
                raise UserModelError(
                    f"class {name!r}: default for unknown property {prop!r}"
                )

    def __repr__(self) -> str:
        return f"<UserClass {self.name} <<{self.stereotype.value}>>>"


class UserAssociation:
    """A navigable link between two user-model classes."""

    def __init__(self, source: str, role: str, target: str) -> None:
        if not role:
            raise UserModelError("user-model associations require a role")
        self.source = source
        self.role = role
        self.target = target

    def __repr__(self) -> str:
        return f"<UserAssociation {self.source} --{self.role}--> {self.target}>"


class UserModelSchema:
    """The structure of the data required for personalization."""

    def __init__(
        self,
        name: str,
        classes: Iterable[UserClass],
        associations: Iterable[UserAssociation] = (),
    ) -> None:
        self.name = name
        self.classes: dict[str, UserClass] = {}
        for cls in classes:
            if cls.name in self.classes:
                raise UserModelError(f"duplicate user-model class {cls.name!r}")
            self.classes[cls.name] = cls
        users = [
            c for c in self.classes.values() if c.stereotype is SUSStereotype.USER
        ]
        if len(users) != 1:
            raise UserModelError(
                f"a user model needs exactly one <<User>> class, found "
                f"{[c.name for c in users]}"
            )
        self.user_class = users[0]
        self.associations: dict[tuple[str, str], UserAssociation] = {}
        for assoc in associations:
            self.add_association(assoc)

    def add_association(self, assoc: UserAssociation) -> UserAssociation:
        for end in (assoc.source, assoc.target):
            if end not in self.classes:
                raise UserModelError(
                    f"association role {assoc.role!r} references unknown "
                    f"class {end!r}"
                )
        key = (assoc.source, assoc.role)
        if key in self.associations:
            raise UserModelError(
                f"class {assoc.source!r} already has an association role "
                f"{assoc.role!r}"
            )
        self.associations[key] = assoc
        return assoc

    def cls(self, name: str) -> UserClass:
        try:
            return self.classes[name]
        except KeyError:
            raise UserModelError(
                f"user model has no class {name!r}; available: "
                f"{sorted(self.classes)}"
            ) from None

    def navigate(self, cls_name: str, step: str) -> tuple[str, str]:
        """Resolve one step from a class.

        Returns ``("property", type_name)`` or ``("association",
        target_class_name)``.
        """
        cls = self.cls(cls_name)
        if step in cls.properties:
            return ("property", cls.properties[step].name)
        assoc = self.associations.get((cls_name, step))
        if assoc is not None:
            return ("association", assoc.target)
        raise UserModelError(
            f"cannot navigate {step!r} from user-model class {cls_name!r}; "
            f"properties: {sorted(cls.properties)}, roles: "
            f"{sorted(r for (s, r) in self.associations if s == cls_name)}"
        )

    def session_classes(self) -> list[UserClass]:
        return [
            c
            for c in self.classes.values()
            if c.stereotype is SUSStereotype.SESSION
        ]

    def spatial_selection_classes(self) -> list[UserClass]:
        return [
            c
            for c in self.classes.values()
            if c.stereotype is SUSStereotype.SPATIAL_SELECTION
        ]

    def to_uml(self) -> Model:
        """The Fig. 4-style UML class diagram for this user model."""
        from repro.geomd.gtypes_enum import geometric_types_enumeration

        model = Model(self.name)
        profile = sus_profile()
        model.apply_profile(profile)
        model.add_enumeration(geometric_types_enumeration())
        for cls in self.classes.values():
            uml_cls = UMLClass(cls.name)
            model.add_class(uml_cls)
            profile.apply(uml_cls, cls.stereotype.value)
            for prop_name, prop_type in cls.properties.items():
                uml_cls.add_property(Property(prop_name, prop_type))
        for (source, role), assoc in self.associations.items():
            model.add_association(
                Association(
                    f"{source}_{role}",
                    AssociationEnd("src", model.cls(source), 1, 1),
                    AssociationEnd(role, model.cls(assoc.target), 0, 1),
                )
            )
        return model


class _Instance:
    """A runtime object: values plus links to other instances."""

    __slots__ = ("cls", "values", "links")

    def __init__(self, cls: UserClass) -> None:
        self.cls = cls
        self.values: dict[str, object] = dict(cls.defaults)
        self.links: dict[str, "_Instance"] = {}


class UserProfile:
    """One user's runtime profile over a :class:`UserModelSchema`.

    The profile auto-instantiates linked singletons on first navigation, so
    acquisition rules (``SetContent``) can write through paths like
    ``DecisionMaker.dm2airportcity.degree`` without explicit setup.
    """

    def __init__(self, schema: UserModelSchema, user_id: str) -> None:
        if not user_id:
            raise UserModelError("profiles require a user id")
        self.schema = schema
        self.user_id = user_id
        self._root = _Instance(schema.user_class)

    # -- path access -------------------------------------------------------

    def _walk(self, steps: list[str], create: bool) -> tuple[_Instance, str]:
        """Walk to the instance owning the final step; returns (obj, step)."""
        if not steps:
            raise UserModelError("empty user-model path")
        if steps[0] != self.schema.user_class.name:
            raise UserModelError(
                f"SUS paths start at the user class "
                f"{self.schema.user_class.name!r}, got {steps[0]!r}"
            )
        instance = self._root
        remaining = steps[1:]
        if not remaining:
            raise UserModelError(
                "a SUS path must continue past the user class"
            )
        while len(remaining) > 1:
            step = remaining[0]
            kind, target = self.schema.navigate(instance.cls.name, step)
            if kind != "association":
                raise UserModelError(
                    f"path continues past property {step!r} of "
                    f"{instance.cls.name!r}"
                )
            linked = instance.links.get(step)
            if linked is None:
                if not create:
                    raise UserModelError(
                        f"no {step!r} instance linked from "
                        f"{instance.cls.name!r} yet"
                    )
                linked = _Instance(self.schema.cls(target))
                instance.links[step] = linked
            instance = linked
            remaining = remaining[1:]
        return instance, remaining[0]

    def get(self, path: str) -> object:
        """Read a value (or linked instance) at a dotted SUS path.

        Reading through an absent association auto-instantiates the linked
        singleton with its class defaults — so interest counters read 0
        before the first tracked selection (Example 5.3's threshold check
        runs before any SpatialSelection has fired).
        """
        steps = path.split(".")
        instance, last = self._walk(steps, create=True)
        kind, _target = self.schema.navigate(instance.cls.name, last)
        if kind == "association":
            linked = instance.links.get(last)
            if linked is None:
                raise UserModelError(f"no instance linked at {path!r}")
            return linked
        if last not in instance.values:
            raise UserModelError(f"value at {path!r} has not been set")
        return instance.values[last]

    def set(self, path: str, value: object) -> None:
        """Write a value at a dotted SUS path (SetContent semantics)."""
        steps = path.split(".")
        instance, last = self._walk(steps, create=True)
        kind, _target = self.schema.navigate(instance.cls.name, last)
        if kind != "property":
            raise UserModelError(
                f"cannot assign to association role {last!r} (path {path!r})"
            )
        declared = instance.cls.properties[last]
        if declared.name == "Geometry" and not isinstance(value, Geometry):
            raise UserModelError(
                f"path {path!r} expects a Geometry, got {type(value).__name__}"
            )
        if declared.name == "Integer":
            if isinstance(value, bool):
                raise UserModelError(f"path {path!r} expects an integer, got bool")
            # PRML arithmetic produces floats (`degree + 1`); integral
            # results are stored back as ints.
            if isinstance(value, float):
                if not value.is_integer():
                    raise UserModelError(
                        f"path {path!r} expects an integer, got {value!r}"
                    )
                value = int(value)
        instance.values[last] = value

    def has(self, path: str) -> bool:
        """Does the path resolve to a set value / linked instance?"""
        try:
            self.get(path)
            return True
        except UserModelError:
            return False

    # -- interest tracking ----------------------------------------------------

    def increment_degree(self, selection_class: str, by: int = 1) -> int:
        """Bump a SpatialSelection interest counter; returns the new value."""
        cls = self.schema.cls(selection_class)
        if cls.stereotype is not SUSStereotype.SPATIAL_SELECTION:
            raise UserModelError(
                f"{selection_class!r} is not a <<SpatialSelection>> class"
            )
        role = self._role_to(selection_class)
        path = f"{self.schema.user_class.name}.{role}.degree"
        current = self.get(path) if self.has(path) else 0
        assert isinstance(current, int)
        self.set(path, current + by)
        return current + by

    def degree(self, selection_class: str) -> int:
        role = self._role_to(selection_class)
        path = f"{self.schema.user_class.name}.{role}.degree"
        if not self.has(path):
            return 0
        value = self.get(path)
        assert isinstance(value, int)
        return value

    def _role_to(self, class_name: str) -> str:
        for (source, role), assoc in self.schema.associations.items():
            if source == self.schema.user_class.name and assoc.target == class_name:
                return role
        raise UserModelError(
            f"the user class has no association to {class_name!r}"
        )

    # -- session lifecycle ----------------------------------------------------

    def open_session(self, location: Point | None = None) -> None:
        """Start an analysis session; optionally attach a location context.

        The location becomes readable through the standard
        ``User.<session-role>.<location-role>.geometry`` path used by
        Example 5.2's rule.
        """
        session_classes = self.schema.session_classes()
        if not session_classes:
            raise UserModelError("the user model declares no <<Session>> class")
        session_cls = session_classes[0]
        session_role = self._role_to(session_cls.name)
        session = _Instance(session_cls)
        self._root.links[session_role] = session
        if location is not None:
            location_role = None
            location_cls = None
            for (source, role), assoc in self.schema.associations.items():
                if source != session_cls.name:
                    continue
                target_cls = self.schema.cls(assoc.target)
                if target_cls.stereotype is SUSStereotype.LOCATION_CONTEXT:
                    location_role = role
                    location_cls = target_cls
                    break
            if location_role is None or location_cls is None:
                raise UserModelError(
                    "the session class has no <<LocationContext>> association"
                )
            location_instance = _Instance(location_cls)
            location_instance.values["geometry"] = location
            session.links[location_role] = location_instance

    def close_session(self) -> None:
        session_classes = self.schema.session_classes()
        if not session_classes:
            return
        role = self._role_to(session_classes[0].name)
        self._root.links.pop(role, None)

    @property
    def in_session(self) -> bool:
        session_classes = self.schema.session_classes()
        if not session_classes:
            return False
        role = self._role_to(session_classes[0].name)
        return role in self._root.links

    # -- snapshots ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot (geometries as WKT)."""

        def dump(instance: _Instance) -> dict:
            values = {
                k: (v.wkt if isinstance(v, Geometry) else v)
                for k, v in instance.values.items()
            }
            return {
                "class": instance.cls.name,
                "values": values,
                "links": {
                    role: dump(linked) for role, linked in instance.links.items()
                },
            }

        return {"user_id": self.user_id, "root": dump(self._root)}

    @classmethod
    def from_dict(cls, schema: UserModelSchema, data: dict) -> "UserProfile":
        """Rebuild a profile from a :meth:`to_dict` snapshot.

        The user model "will be updated during the lifetime of the system"
        (Section 4.1) — interest degrees and characteristics survive across
        sessions, so profiles persist between portal restarts.
        """
        from repro.geometry import wkt_loads

        profile = cls(schema, data["user_id"])

        def load(instance: _Instance, node: dict) -> None:
            if node["class"] != instance.cls.name:
                raise UserModelError(
                    f"snapshot class {node['class']!r} does not match "
                    f"schema class {instance.cls.name!r}"
                )
            for name, value in node["values"].items():
                declared = instance.cls.properties.get(name)
                if declared is None:
                    raise UserModelError(
                        f"snapshot value {name!r} unknown on class "
                        f"{instance.cls.name!r}"
                    )
                if declared.name == "Geometry" and isinstance(value, str):
                    value = wkt_loads(value)
                instance.values[name] = value
            for role, child_node in node["links"].items():
                kind, target = schema.navigate(instance.cls.name, role)
                if kind != "association":
                    raise UserModelError(
                        f"snapshot link {role!r} is not an association of "
                        f"{instance.cls.name!r}"
                    )
                child = _Instance(schema.cls(target))
                instance.links[role] = child
                load(child, child_node)

        load(profile._root, data["root"])
        return profile

    def __repr__(self) -> str:
        return f"<UserProfile {self.user_id} ({self.schema.user_class.name})>"
