"""The ``GeometricTypes`` enumeration of the paper (Fig. 3).

"All the allowed geometric primitives have been grouped in an enumeration
element named GeometricTypes.  Those are POINT, LINE, POLYGON and
COLLECTION.  These primitives are included on ISO and OGC spatial
standards" — Section 4.1.
"""

from __future__ import annotations

import enum

from repro.errors import GeometryError
from repro.geometry.gtypes import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.uml.core import Enumeration

__all__ = ["GeometricType", "geometric_types_enumeration"]


class GeometricType(enum.Enum):
    """The paper's geometric primitives, as declared in the SUS profile."""

    POINT = "POINT"
    LINE = "LINE"
    POLYGON = "POLYGON"
    COLLECTION = "COLLECTION"

    def accepts(self, geom: Geometry) -> bool:
        """Does a concrete geometry instance conform to this declared type?

        Multi-part geometries conform to their base type (a MultiPoint is
        acceptable where POINT data is declared, matching the OGC layer
        model where a layer column is typed by its member primitive), and
        everything conforms to COLLECTION.
        """
        if self is GeometricType.POINT:
            return isinstance(geom, (Point, MultiPoint))
        if self is GeometricType.LINE:
            return isinstance(geom, (LineString, MultiLineString))
        if self is GeometricType.POLYGON:
            return isinstance(geom, (Polygon, MultiPolygon))
        return isinstance(geom, Geometry)

    @classmethod
    def of(cls, geom: Geometry) -> "GeometricType":
        """Classify a geometry instance into its declared type."""
        if isinstance(geom, (Point, MultiPoint)):
            return cls.POINT
        if isinstance(geom, (LineString, MultiLineString)):
            return cls.LINE
        if isinstance(geom, (Polygon, MultiPolygon)):
            return cls.POLYGON
        if isinstance(geom, GeometryCollection):
            return cls.COLLECTION
        raise GeometryError(f"cannot classify {type(geom).__name__}")

    @classmethod
    def parse(cls, text: str) -> "GeometricType":
        """Parse the PRML literal spelling (``POINT``, ``LINE``...)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise GeometryError(
                f"unknown geometric type {text!r}; expected one of "
                f"{[t.name for t in cls]}"
            ) from None


def geometric_types_enumeration() -> Enumeration:
    """The UML enumeration element used by the SUS profile (Fig. 3)."""
    return Enumeration("GeometricTypes", [t.name for t in GeometricType])
