"""Geographic multidimensional extension (GeoMD) of the MD metamodel.

Provides the paper's ``GeometricTypes`` enumeration, spatial levels,
thematic layers, the schema-personalization algebra behind the
``BecomeSpatial``/``AddLayer`` PRML actions, UML export with the
``<<SpatialLevel>>``/``<<Layer>>`` stereotypes (Fig. 6), and topological
hierarchy constraints (after Malinowski & Zimányi).
"""

from repro.geomd.gtypes_enum import GeometricType, geometric_types_enumeration
from repro.geomd.schema import GEOMETRY_ATTRIBUTE, GeoMDSchema, Layer
from repro.geomd.topology import (
    HierarchyConstraint,
    TopologicalRelation,
    check_constraint,
)
from repro.geomd.uml_export import geomd_profile, geomd_to_uml

__all__ = [
    "GEOMETRY_ATTRIBUTE",
    "GeoMDSchema",
    "GeometricType",
    "HierarchyConstraint",
    "Layer",
    "TopologicalRelation",
    "check_constraint",
    "geometric_types_enumeration",
    "geomd_profile",
    "geomd_to_uml",
]
