"""UML export for GeoMD schemas — regenerates Fig. 6.

Extends the MD profile with the stereotypes of the geographic extension
(ref [10]): ``<<SpatialLevel>>`` replaces ``<<Base>>`` on spatialized
levels and ``<<Layer>>`` marks thematic layer classes.
"""

from __future__ import annotations

from repro.geomd.gtypes_enum import geometric_types_enumeration
from repro.geomd.schema import GeoMDSchema
from repro.mdm.uml_export import md_profile, schema_to_uml
from repro.uml.core import GEOMETRY, Model, Profile, Property, Stereotype, UMLClass

__all__ = ["geomd_profile", "geomd_to_uml"]


def geomd_profile() -> Profile:
    """MD profile + the geographic stereotypes of ref [10]."""
    profile = md_profile()
    profile.name = "GeoMDProfile"
    profile.add(Stereotype("SpatialLevel", "Class"))
    profile.add(Stereotype("Layer", "Class"))
    profile.add(Stereotype("SpatialMeasure", "Property"))
    return profile


def geomd_to_uml(schema: GeoMDSchema) -> Model:
    """Build the UML model for a GeoMD schema (Fig. 6 regeneration)."""
    model = schema_to_uml(schema)
    profile = geomd_profile()
    model.profiles.clear()
    model.apply_profile(profile)
    model.add_enumeration(geometric_types_enumeration())

    # Re-stereotype spatialized levels: Base -> Base + SpatialLevel.
    for level_ref, gtype in schema.spatial_levels.items():
        dim_name, _, level_name = level_ref.partition(".")
        cls = _level_class(model, dim_name, level_name)
        profile.apply(cls, "SpatialLevel")
        cls.stereotypes.discard("Base")

    # Layer classes.
    for layer in schema.layers.values():
        layer_cls = UMLClass(layer.name)
        if layer_cls.name in model.classes:
            layer_cls = UMLClass(f"{layer.name}Layer")
        model.add_class(layer_cls)
        profile.apply(layer_cls, "Layer")
        for attr in layer.attributes.values():
            layer_cls.add_property(Property(attr.name, attr.type))
        geom_prop = layer_cls.add_property(Property("geometry", GEOMETRY))
        geom_prop.stereotypes.add(layer.geometric_type.name)
    return model


def _level_class(model: Model, dim_name: str, level_name: str) -> UMLClass:
    if level_name in model.classes:
        return model.classes[level_name]
    return model.classes[f"{dim_name}_{level_name}"]
