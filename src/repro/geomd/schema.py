"""The Geographic Multidimensional model (GeoMD) — refs [10, 11].

A :class:`GeoMDSchema` is an :class:`~repro.mdm.model.MDSchema` extended
with:

* **spatial levels** — Base classes that carry a geometric description
  (the ``<<SpatialLevel>>`` stereotype of Fig. 6), created by the
  ``BecomeSpatial`` personalization action;
* **layers** — thematic geographic data external to the domain (the
  ``<<Layer>>`` stereotype: airports, train lines, highways), created by
  the ``AddLayer`` personalization action.

The two mutation methods *are* the paper's schema-personalization algebra;
:mod:`repro.prml.evaluator` calls them when executing schema rules.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SchemaError
from repro.geomd.gtypes_enum import GeometricType
from repro.mdm.model import Attribute, AttributeKind, Dimension, Fact, MDSchema
from repro.uml.core import GEOMETRY, DataType, STRING

__all__ = ["Layer", "GeoMDSchema", "GEOMETRY_ATTRIBUTE"]

#: Conventional name of the geometry attribute added by ``BecomeSpatial``.
GEOMETRY_ATTRIBUTE = "geometry"


class Layer:
    """A thematic geographic layer (``AddLayer`` result).

    Layers group geographic features external to the warehouse domain —
    "in order to correlate sales with the distance between stores and
    highway exits, we have to add a thematic layer describing highways"
    (Section 4.2.4).  Feature instances live in
    :class:`repro.storage.tables.LayerTable`.
    """

    def __init__(
        self,
        name: str,
        geometric_type: GeometricType,
        attributes: Iterable[Attribute] = (),
    ) -> None:
        if not name:
            raise SchemaError("layers require a name")
        self.name = name
        self.geometric_type = geometric_type
        self.attributes: dict[str, Attribute] = {}
        for attr in attributes:
            if attr.name in self.attributes:
                raise SchemaError(
                    f"layer {name!r} already has attribute {attr.name!r}"
                )
            self.attributes[attr.name] = attr
        if "name" not in self.attributes:
            self.attributes["name"] = Attribute(
                "name", STRING, AttributeKind.DESCRIPTOR
            )

    def __repr__(self) -> str:
        return f"<Layer {self.name} {self.geometric_type.name}>"


class GeoMDSchema(MDSchema):
    """MD schema + spatiality: spatial levels and thematic layers."""

    def __init__(
        self,
        name: str,
        dimensions: Iterable[Dimension],
        facts: Iterable[Fact],
        layers: Iterable[Layer] = (),
        spatial_levels: Mapping[str, GeometricType] | None = None,
    ) -> None:
        super().__init__(name, dimensions, facts)
        self.layers: dict[str, Layer] = {}
        for layer in layers:
            if layer.name in self.layers:
                raise SchemaError(f"schema {name!r} already has layer {layer.name!r}")
            self.layers[layer.name] = layer
        self.spatial_levels: dict[str, GeometricType] = {}
        for level_ref, gtype in (spatial_levels or {}).items():
            self._check_level_ref(level_ref)
            self.spatial_levels[level_ref] = gtype
            self._ensure_geometry_attribute(level_ref)

    # -- construction from a plain MD schema -----------------------------------

    @classmethod
    def from_md(cls, schema: MDSchema) -> "GeoMDSchema":
        """Lift a plain MD schema into an (initially non-spatial) GeoMD one.

        This is the first step of the personalization process of Fig. 1:
        the designer starts from the MD model and schema rules then add the
        required spatiality.  The originating schema is not mutated.
        """
        copy = MDSchema.from_dict(schema.to_dict())
        return cls(
            copy.name,
            copy.dimensions.values(),
            copy.facts.values(),
        )

    # -- the schema-personalization algebra ---------------------------------------

    def become_spatial(
        self, level_ref: str, geometric_type: GeometricType
    ) -> None:
        """Add a geometric description to a level (``BecomeSpatial``).

        ``level_ref`` is ``"Dimension.Level"`` or just ``"Dimension"`` for
        its leaf level.  Idempotent for the same geometric type; raises on
        a conflicting re-declaration.
        """
        level_ref = self._normalize_level_ref(level_ref)
        existing = self.spatial_levels.get(level_ref)
        if existing is not None:
            if existing is geometric_type:
                return
            raise SchemaError(
                f"level {level_ref!r} is already spatial with type "
                f"{existing.name}; cannot redeclare as {geometric_type.name}"
            )
        self.spatial_levels[level_ref] = geometric_type
        self._ensure_geometry_attribute(level_ref)

    def add_layer(
        self,
        name: str,
        geometric_type: GeometricType,
        attributes: Iterable[Attribute] = (),
    ) -> Layer:
        """Add a thematic layer (``AddLayer``).  Idempotent on same type."""
        existing = self.layers.get(name)
        if existing is not None:
            if existing.geometric_type is geometric_type:
                return existing
            raise SchemaError(
                f"layer {name!r} already exists with type "
                f"{existing.geometric_type.name}; cannot redeclare as "
                f"{geometric_type.name}"
            )
        layer = Layer(name, geometric_type, attributes)
        self.layers[name] = layer
        return layer

    # -- queries ---------------------------------------------------------------

    def layer(self, name: str) -> Layer:
        try:
            return self.layers[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no layer {name!r}; "
                f"available: {sorted(self.layers)}"
            ) from None

    def is_spatial_level(self, level_ref: str) -> bool:
        try:
            return self._normalize_level_ref(level_ref) in self.spatial_levels
        except SchemaError:
            return False

    def level_geometric_type(self, level_ref: str) -> GeometricType:
        level_ref = self._normalize_level_ref(level_ref)
        try:
            return self.spatial_levels[level_ref]
        except KeyError:
            raise SchemaError(
                f"level {level_ref!r} is not spatial; spatial levels: "
                f"{sorted(self.spatial_levels)}"
            ) from None

    # -- helpers -------------------------------------------------------------

    def _normalize_level_ref(self, level_ref: str) -> str:
        parts = level_ref.split(".")
        if len(parts) == 1:
            dimension = self.dimension(parts[0])
            return f"{dimension.name}.{dimension.leaf}"
        if len(parts) == 2:
            self._check_level_ref(level_ref)
            return level_ref
        raise SchemaError(
            f"bad level reference {level_ref!r}; expected 'Dim' or 'Dim.Level'"
        )

    def _check_level_ref(self, level_ref: str) -> None:
        dim_name, _, level_name = level_ref.partition(".")
        dimension = self.dimension(dim_name)
        dimension.level(level_name or dimension.leaf)

    def _ensure_geometry_attribute(self, level_ref: str) -> None:
        dim_name, _, level_name = level_ref.partition(".")
        level = self.dimension(dim_name).level(level_name)
        if GEOMETRY_ATTRIBUTE not in level.attributes:
            level.add_attribute(
                Attribute(GEOMETRY_ATTRIBUTE, GEOMETRY, AttributeKind.DIMENSION_ATTRIBUTE)
            )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["layers"] = [
            {
                "name": layer.name,
                "geometric_type": layer.geometric_type.name,
                "attributes": [
                    {"name": a.name, "type": a.type.name, "kind": a.kind.value}
                    for a in layer.attributes.values()
                ],
            }
            for layer in self.layers.values()
        ]
        data["spatial_levels"] = {
            ref: gtype.name for ref, gtype in self.spatial_levels.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "GeoMDSchema":
        base = MDSchema.from_dict(data)
        from repro.uml.core import BOOLEAN, DATE, GEOMETRY, INTEGER, REAL, STRING

        types: dict[str, DataType] = {
            t.name: t for t in (STRING, INTEGER, REAL, BOOLEAN, GEOMETRY, DATE)
        }
        layers = [
            Layer(
                ld["name"],
                GeometricType[ld["geometric_type"]],
                [
                    Attribute(a["name"], types[a["type"]], AttributeKind(a["kind"]))
                    for a in ld["attributes"]
                    if a["name"] != "name"
                ],
            )
            for ld in data.get("layers", ())
        ]
        spatial_levels = {
            ref: GeometricType[name]
            for ref, name in data.get("spatial_levels", {}).items()
        }
        return cls(
            base.name,
            base.dimensions.values(),
            base.facts.values(),
            layers,
            spatial_levels,
        )

    def __repr__(self) -> str:
        return (
            f"<GeoMDSchema {self.name} facts={sorted(self.facts)} "
            f"dims={sorted(self.dimensions)} layers={sorted(self.layers)} "
            f"spatial={sorted(self.spatial_levels)}>"
        )
