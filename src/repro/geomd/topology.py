"""Topological constraints over spatial hierarchies.

Malinowski & Zimányi (ref [17] of the paper) introduce *topological
relationship types* that constrain how the geometries of a child level
relate to the geometries of its parent level (a City must lie WITHIN its
State, a Store must be WITHIN its City's urban polygon, and so on).  The
paper cites this as part of the modeling landscape its rules operate over;
this module makes those constraints checkable against warehouse instances,
which the test suite and the data generator use to validate generated
worlds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.geometry import Geometry, contains, disjoint, intersects, touches, within

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.star import StarSchema

__all__ = ["TopologicalRelation", "HierarchyConstraint", "check_constraint"]


class TopologicalRelation(enum.Enum):
    """Allowed child-parent geometric relationships."""

    WITHIN = "within"
    INTERSECTS = "intersects"
    TOUCHES = "touches"
    DISJOINT = "disjoint"
    CONTAINS = "contains"

    def check(self, child: Geometry, parent: Geometry) -> bool:
        predicate: Callable[[Geometry, Geometry], bool] = {
            TopologicalRelation.WITHIN: within,
            TopologicalRelation.INTERSECTS: intersects,
            TopologicalRelation.TOUCHES: touches,
            TopologicalRelation.DISJOINT: disjoint,
            TopologicalRelation.CONTAINS: contains,
        }[self]
        return predicate(child, parent)


@dataclass(frozen=True)
class HierarchyConstraint:
    """Declares that child-level geometries relate to parent-level ones.

    Example: ``HierarchyConstraint("Store", "Store", "City",
    TopologicalRelation.WITHIN)`` — every store point must lie within its
    city polygon.
    """

    dimension: str
    child_level: str
    parent_level: str
    relation: TopologicalRelation


@dataclass
class ConstraintViolation:
    """One member pair breaking a constraint."""

    constraint: HierarchyConstraint
    child_member: str
    parent_member: str

    def __str__(self) -> str:
        return (
            f"{self.constraint.dimension}: {self.child_member!r} is not "
            f"{self.constraint.relation.value} its parent "
            f"{self.parent_member!r} "
            f"({self.constraint.child_level} -> {self.constraint.parent_level})"
        )


def check_constraint(
    star: "StarSchema", constraint: HierarchyConstraint
) -> list[ConstraintViolation]:
    """Validate a constraint against warehouse instances.

    Walks every member of the child level, rolls it up to the parent level
    and applies the topological predicate to both geometries.  Members
    missing a geometry are reported as violations (a declared-spatial level
    must be fully described).
    """
    table = star.dimension_table(constraint.dimension)
    violations: list[ConstraintViolation] = []
    for member in table.members(constraint.child_level):
        parent = table.rollup(member, constraint.parent_level)
        child_geom = table.geometry_of(member)
        parent_geom = table.geometry_of(parent)
        if child_geom is None or parent_geom is None:
            violations.append(
                ConstraintViolation(constraint, member.key, parent.key)
            )
            continue
        if not constraint.relation.check(child_geom, parent_geom):
            violations.append(
                ConstraintViolation(constraint, member.key, parent.key)
            )
    return violations
