"""Synthetic workload engine: generation, replay, measurement.

Three layers behind one import surface:

* **generator** (:mod:`~repro.workload.cohorts`,
  :mod:`~repro.workload.generator`) — cohort blueprints (hand-written or
  reverse-ETL'd from a recorded :class:`~repro.reco.journal.
  WorkloadJournal`) turned into deterministic, seedable, replayable
  event streams;
* **driver** (:mod:`~repro.workload.driver`) — serial / closed-loop /
  open-loop replay of a stream against an in-process portal, a plain
  HTTP endpoint, or a pre-fork cluster pool, with latency percentiles
  and error counts;
* **metrics** (:mod:`~repro.workload.metrics`) — health-route scraping
  bracketing a run: cache hit rates, view patches-vs-rebuilds,
  rehydrations, lock contention, and environment provenance.

:mod:`~repro.workload.harness` binds them into named scale tiers
(smoke/small/medium/large) and portal factories shared by the EXT9
benchmark, the ``repro workload`` CLI and CI.
"""

from repro.workload.cohorts import (
    EVENT_KINDS,
    CohortSpec,
    WorkloadProfile,
    candidate_locations,
    default_profile,
    profile_from_journal,
)
from repro.workload.driver import (
    ClusterTarget,
    HttpTarget,
    InProcessTarget,
    LatencyStats,
    ReplayDriver,
    ReplayReport,
)
from repro.workload.generator import (
    AS_OF_EPOCH,
    STREAM_FORMAT,
    EventStream,
    GeneratorConfig,
    TrafficEvent,
    WorkloadGenerator,
)
from repro.workload.harness import (
    WORKLOAD_TENANTS,
    WORKLOAD_TIERS,
    WorkloadTier,
    build_tier_world,
    build_workload_portal,
    demo_journal_profile,
    generator_for_tier,
    stream_for_tier,
    tier,
)
from repro.workload.metrics import (
    contention_summary,
    environment_provenance,
    health_window,
    merge_health,
)

__all__ = [
    "EVENT_KINDS",
    "CohortSpec",
    "WorkloadProfile",
    "candidate_locations",
    "default_profile",
    "profile_from_journal",
    "AS_OF_EPOCH",
    "STREAM_FORMAT",
    "EventStream",
    "GeneratorConfig",
    "TrafficEvent",
    "WorkloadGenerator",
    "ClusterTarget",
    "HttpTarget",
    "InProcessTarget",
    "LatencyStats",
    "ReplayDriver",
    "ReplayReport",
    "WORKLOAD_TENANTS",
    "WORKLOAD_TIERS",
    "WorkloadTier",
    "build_tier_world",
    "build_workload_portal",
    "demo_journal_profile",
    "generator_for_tier",
    "stream_for_tier",
    "tier",
    "contention_summary",
    "environment_provenance",
    "health_window",
    "merge_health",
]
