"""Replay generated event streams against a live target.

Targets implement one method — ``request(method, path, body, token,
datamart) -> (status, body_dict)`` — and the two shipped ones cover the
deployment spectrum:

* :class:`InProcessTarget` — the :class:`~repro.web.portal.PortalApp`
  façade, no sockets (the single-process baseline);
* :class:`ClusterTarget` — a :class:`~repro.cluster.pool.WorkerPool`
  through the affinity-routing :class:`~repro.cluster.pool.ClusterClient`
  (real pre-fork multi-process serving over a shared state backend).
  Any HTTP endpoint with the same surface works through
  :class:`HttpTarget`.

Three replay modes:

* ``serial`` — one thread, stream order, optionally collecting
  (token-stripped) response bodies: the **identical-response gate**
  replays the same stream serially against two targets and compares.
* ``closed`` — M concurrent actors, each owning a disjoint slice of the
  stream's sessions (per-session request order is preserved, like real
  users behind keep-alive connections); throughput under a fixed
  concurrency level.
* ``open`` — fixed arrival rate: a pacing dispatcher schedules each
  event at ``start + i/rate`` and hands it to per-session-pinned sender
  threads; reported latency counts from the *scheduled* time, so queue
  delay under overload shows up in the percentiles (the open-loop
  convention — no coordinated omission).

Per-request latencies feed :class:`LatencyStats` (stdlib percentile
maths over the recorded samples); errors are counted per status and
never abort a timed run.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.workload.generator import AS_OF_EPOCH, EventStream, TrafficEvent

__all__ = [
    "InProcessTarget",
    "ClusterTarget",
    "HttpTarget",
    "LatencyStats",
    "ReplayReport",
    "ReplayDriver",
]


class InProcessTarget:
    """The in-process portal façade as a replay target."""

    name = "in_process"

    def __init__(self, app) -> None:
        self.app = app

    def request(self, method, path, body=None, token=None, datamart=None):
        response = self.app.handle(method, path, body, token=token)
        return response.status, response.json()

    def health(self) -> list[dict]:
        """One health snapshot per serving process (here: exactly one)."""
        return [self.request("GET", "/api/v1/health")[1]]

    def close(self) -> None:  # symmetry with the socket targets
        return None


class HttpTarget:
    """Any ``/api/v1`` HTTP endpoint (one address, keep-alive per thread)."""

    name = "http"

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.address = (host, port)
        self.timeout = timeout
        self._local = threading.local()

    def _connection(self):
        import http.client

        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.address[0], self.address[1], timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def request(self, method, path, body=None, token=None, datamart=None):
        import http.client
        import json

        headers = {}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if token is not None:
            headers["X-Session"] = token
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            conn.close()
            self._local.conn = None
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        return response.status, (json.loads(raw) if raw else {})

    def health(self) -> list[dict]:
        return [self.request("GET", "/api/v1/health")[1]]

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


class ClusterTarget:
    """A pre-fork worker pool through the tenant-affinity client."""

    name = "cluster"

    def __init__(self, pool, client=None) -> None:
        from repro.cluster.pool import ClusterClient

        self.pool = pool
        self.client = client if client is not None else ClusterClient(pool)

    def request(self, method, path, body=None, token=None, datamart=None):
        return self.client.request(
            method, path, body=body, token=token, datamart=datamart
        )

    def health(self) -> list[dict]:
        """One health snapshot per worker (the collector merges them)."""
        return self.client.shard_health()

    def close(self) -> None:
        self.client.close()


@dataclass(frozen=True)
class LatencyStats:
    """Percentiles over recorded per-request latencies, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples_s: list[float]) -> "LatencyStats":
        if not samples_s:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples_s)
        count = len(ordered)

        def pct(q: float) -> float:
            index = max(0, min(count - 1, round(q * (count - 1))))
            return ordered[index]

        to_ms = lambda s: round(s * 1000.0, 3)  # noqa: E731
        return cls(
            count=count,
            mean_ms=to_ms(sum(ordered) / count),
            p50_ms=to_ms(pct(0.50)),
            p95_ms=to_ms(pct(0.95)),
            p99_ms=to_ms(pct(0.99)),
            max_ms=to_ms(ordered[-1]),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


@dataclass
class ReplayReport:
    """What one replay run did: volume, rate, latency, errors."""

    mode: str
    target: str
    requests: int
    errors: int
    elapsed_s: float
    req_per_s: float
    latency: LatencyStats
    by_kind: dict[str, int] = field(default_factory=dict)
    error_statuses: dict[str, int] = field(default_factory=dict)
    #: Open-loop only: configured rate and mean dispatch lag.
    arrival_rate_per_s: float | None = None
    dispatch_lag_ms: float | None = None

    def to_dict(self) -> dict:
        out = {
            "mode": self.mode,
            "target": self.target,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 4),
            "req_per_s": round(self.req_per_s, 1),
            "latency": self.latency.to_dict(),
            "by_kind": dict(sorted(self.by_kind.items())),
            "error_statuses": dict(sorted(self.error_statuses.items())),
        }
        if self.arrival_rate_per_s is not None:
            out["arrival_rate_per_s"] = self.arrival_rate_per_s
            out["dispatch_lag_ms"] = self.dispatch_lag_ms
        return out


class _SessionState:
    """Per-session replay state: the live token once login answered."""

    __slots__ = ("token",)

    def __init__(self) -> None:
        self.token: str | None = None


class ReplayDriver:
    """Replay an :class:`EventStream` against one target.

    ``as_of_generations`` maps datamart name -> the generation the
    symbolic :data:`~repro.workload.generator.AS_OF_EPOCH` marker
    resolves to; :meth:`resolve_as_of` scrapes it from the target's
    health route (every tenant's ``star_generation``) so epoch reads are
    answerable and identical across targets built from the same factory.
    """

    def __init__(self, target, as_of_generations: dict[str, int] | None = None):
        self.target = target
        self.as_of_generations = dict(as_of_generations or {})

    def resolve_as_of(self) -> dict[str, int]:
        """Record each tenant's current star generation as the epoch."""
        for snapshot in self.target.health():
            for tenant in snapshot.get("datamarts", ()):
                self.as_of_generations.setdefault(
                    tenant["name"], tenant["star_generation"]
                )
        return self.as_of_generations

    # -- one event ----------------------------------------------------------------

    def _build_request(self, event: TrafficEvent, state: _SessionState):
        kind = event.kind
        payload = dict(event.payload)
        if kind == "login":
            payload["datamart"] = event.datamart
            return ("POST", "/api/v1/login", payload, None, event.datamart)
        token = state.token
        if kind == "logout":
            return ("POST", "/api/v1/logout", None, token, None)
        if kind == "view":
            return ("GET", "/api/v1/view", None, token, None)
        if kind == "query":
            if payload.get("as_of") == AS_OF_EPOCH:
                generation = self.as_of_generations.get(event.datamart)
                if generation is None:
                    raise ReproError(
                        f"stream uses epoch as-of reads but no generation is "
                        f"recorded for datamart {event.datamart!r}; call "
                        f"resolve_as_of() first"
                    )
                payload["as_of"] = generation
            return ("POST", "/api/v1/query", payload, token, None)
        if kind == "selection":
            return ("POST", "/api/v1/selection", payload, token, None)
        if kind == "layer":
            return (
                "GET",
                f"/api/v1/layers/{payload['layer']}",
                None,
                token,
                None,
            )
        if kind == "recommendations":
            return (
                "GET",
                f"/api/v1/recommendations/{payload['kind']}",
                None,
                token,
                None,
            )
        raise ReproError(f"unknown workload event kind {kind!r}")

    def _issue(self, event: TrafficEvent, state: _SessionState):
        method, path, body, token, datamart = self._build_request(event, state)
        status, response = self.target.request(
            method, path, body=body, token=token, datamart=datamart
        )
        if event.kind == "login" and status == 200:
            state.token = response.get("token")
        return status, response

    # -- serial (gate) mode -------------------------------------------------------

    def replay_serial(
        self, stream: EventStream, collect_bodies: bool = False
    ) -> tuple[ReplayReport, list | None]:
        """Stream-order replay on one thread.

        With ``collect_bodies`` the (token-stripped) response bodies come
        back in stream order — the input to the identical-response gate.
        """
        sessions: dict[str, _SessionState] = {}
        samples: list[float] = []
        by_kind: dict[str, int] = {}
        error_statuses: dict[str, int] = {}
        errors = 0
        bodies: list | None = [] if collect_bodies else None
        started = time.perf_counter()
        for event in stream:
            state = sessions.setdefault(event.session, _SessionState())
            sent = time.perf_counter()
            status, response = self._issue(event, state)
            samples.append(time.perf_counter() - sent)
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            if not 200 <= status < 300:
                errors += 1
                error_statuses[str(status)] = (
                    error_statuses.get(str(status), 0) + 1
                )
            if bodies is not None:
                if event.kind == "login":
                    response = {
                        k: v for k, v in response.items() if k != "token"
                    }
                bodies.append(response)
        elapsed = time.perf_counter() - started
        report = ReplayReport(
            mode="serial",
            target=getattr(self.target, "name", "target"),
            requests=len(stream),
            errors=errors,
            elapsed_s=elapsed,
            req_per_s=len(stream) / elapsed if elapsed > 0 else 0.0,
            latency=LatencyStats.from_samples(samples),
            by_kind=by_kind,
            error_statuses=error_statuses,
        )
        return report, bodies

    # -- concurrent modes ---------------------------------------------------------

    def _session_slices(self, stream: EventStream, actors: int):
        """Events grouped per session, sessions dealt round-robin to
        actors (per-session order preserved, like one user = one agent)."""
        per_session: dict[str, list[TrafficEvent]] = {}
        order: list[str] = []
        for event in stream:
            if event.session not in per_session:
                per_session[event.session] = []
                order.append(event.session)
            per_session[event.session].append(event)
        slices: list[list[list[TrafficEvent]]] = [[] for _ in range(actors)]
        for index, session_id in enumerate(order):
            slices[index % actors].append(per_session[session_id])
        return slices

    def replay_closed(self, stream: EventStream, actors: int = 4) -> ReplayReport:
        """Closed loop: ``actors`` concurrent agents, disjoint sessions."""
        if actors < 1:
            raise ReproError("actors must be >= 1")
        slices = self._session_slices(stream, actors)
        samples_per_actor: list[list[float]] = [[] for _ in range(actors)]
        counters: list[dict] = [
            {"by_kind": {}, "errors": 0, "error_statuses": {}}
            for _ in range(actors)
        ]
        failures: list[Exception] = []

        def drive(actor: int) -> None:
            try:
                samples = samples_per_actor[actor]
                counts = counters[actor]
                for session_events in slices[actor]:
                    state = _SessionState()
                    for event in session_events:
                        sent = time.perf_counter()
                        status, _response = self._issue(event, state)
                        samples.append(time.perf_counter() - sent)
                        counts["by_kind"][event.kind] = (
                            counts["by_kind"].get(event.kind, 0) + 1
                        )
                        if not 200 <= status < 300:
                            counts["errors"] += 1
                            counts["error_statuses"][str(status)] = (
                                counts["error_statuses"].get(str(status), 0) + 1
                            )
            except Exception as exc:  # noqa: BLE001 - re-raised after join
                failures.append(exc)

        threads = [
            threading.Thread(target=drive, args=(actor,), name=f"replay-{actor}")
            for actor in range(actors)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if failures:
            raise failures[0]
        return self._merge_report(
            "closed", stream, elapsed, samples_per_actor, counters
        )

    def replay_open(
        self,
        stream: EventStream,
        rate_per_s: float,
        senders: int = 4,
    ) -> ReplayReport:
        """Open loop: events dispatched at a fixed arrival rate.

        Each session is pinned to one sender thread (per-session order),
        and latency is measured from the *scheduled* arrival time — a
        backed-up sender queue shows up as latency, not as a slower rate.
        """
        if rate_per_s <= 0:
            raise ReproError("rate_per_s must be positive")
        if senders < 1:
            raise ReproError("senders must be >= 1")
        queues: list[queue.Queue] = [queue.Queue() for _ in range(senders)]
        #: session id -> sender index (first-seen round-robin pinning).
        pinned: dict[str, int] = {}
        samples_per_sender: list[list[float]] = [[] for _ in range(senders)]
        lags: list[list[float]] = [[] for _ in range(senders)]
        counters: list[dict] = [
            {"by_kind": {}, "errors": 0, "error_statuses": {}}
            for _ in range(senders)
        ]
        sessions: dict[str, _SessionState] = {}
        failures: list[Exception] = []

        def send_loop(index: int) -> None:
            try:
                samples = samples_per_sender[index]
                counts = counters[index]
                while True:
                    item = queues[index].get()
                    if item is None:
                        return
                    scheduled, event = item
                    state = sessions[event.session]
                    dispatch = time.perf_counter()
                    status, _response = self._issue(event, state)
                    done = time.perf_counter()
                    samples.append(done - scheduled)
                    lags[index].append(max(0.0, dispatch - scheduled))
                    counts["by_kind"][event.kind] = (
                        counts["by_kind"].get(event.kind, 0) + 1
                    )
                    if not 200 <= status < 300:
                        counts["errors"] += 1
                        counts["error_statuses"][str(status)] = (
                            counts["error_statuses"].get(str(status), 0) + 1
                        )
            except Exception as exc:  # noqa: BLE001 - re-raised after join
                failures.append(exc)

        threads = [
            threading.Thread(target=send_loop, args=(i,), name=f"sender-{i}")
            for i in range(senders)
        ]
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        interval = 1.0 / rate_per_s
        for index, event in enumerate(stream):
            scheduled = started + index * interval
            now = time.perf_counter()
            if scheduled > now:
                time.sleep(scheduled - now)
            if event.session not in pinned:
                pinned[event.session] = len(pinned) % senders
                sessions[event.session] = _SessionState()
            queues[pinned[event.session]].put((scheduled, event))
        for q in queues:
            q.put(None)
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if failures:
            raise failures[0]
        report = self._merge_report(
            "open", stream, elapsed, samples_per_sender, counters
        )
        lag_samples = [lag for per in lags for lag in per]
        report.arrival_rate_per_s = rate_per_s
        report.dispatch_lag_ms = round(
            1000.0 * sum(lag_samples) / len(lag_samples), 3
        ) if lag_samples else 0.0
        return report

    def _merge_report(self, mode, stream, elapsed, samples_lists, counters):
        samples = [sample for per in samples_lists for sample in per]
        by_kind: dict[str, int] = {}
        error_statuses: dict[str, int] = {}
        errors = 0
        for counts in counters:
            errors += counts["errors"]
            for kind, count in counts["by_kind"].items():
                by_kind[kind] = by_kind.get(kind, 0) + count
            for status, count in counts["error_statuses"].items():
                error_statuses[status] = error_statuses.get(status, 0) + count
        return ReplayReport(
            mode=mode,
            target=getattr(self.target, "name", "target"),
            requests=len(stream),
            errors=errors,
            elapsed_s=elapsed,
            req_per_s=len(stream) / elapsed if elapsed > 0 else 0.0,
            latency=LatencyStats.from_samples(samples),
            by_kind=by_kind,
            error_statuses=error_statuses,
        )
