"""Deterministic synthetic traffic generation.

The :class:`WorkloadGenerator` turns a :class:`~repro.workload.cohorts.
WorkloadProfile` plus a :class:`GeneratorConfig` into a replayable
:class:`EventStream`: a flat, globally ordered sequence of
:class:`TrafficEvent` records — session logins (with clustered login
locations), views, GeoMDQL queries (optionally as-of reads), spatial
selection reports, layer fetches, recommendation fetches, and logouts —
that any :mod:`~repro.workload.driver` target can replay verbatim.

Determinism is the contract: **every** stochastic choice (cohort
assignment, session sampling, location jitter, event draws, abandon
decisions) flows through the one ``random.Random(config.seed)`` instance
created per :meth:`WorkloadGenerator.stream` call, so identical
``(seed, params)`` produce byte-identical serialized streams
(:meth:`EventStream.to_jsonl`) — the property the EXT9 benchmark and the
regression tests pin.  The population can be arbitrarily large
(``users`` is a number, not a list): user identities are materialized
lazily as sessions sample them, so a million-user tier costs only its
*active* sessions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.workload.cohorts import CohortSpec, WorkloadProfile

__all__ = [
    "STREAM_FORMAT",
    "AS_OF_EPOCH",
    "GeneratorConfig",
    "TrafficEvent",
    "EventStream",
    "WorkloadGenerator",
]

#: Header ``format`` tag of the JSONL stream serialization.
STREAM_FORMAT = "repro-workload-stream/1"

#: Symbolic ``as_of`` marker: the driver resolves it to the target
#: star's generation at replay start (the stream itself never mutates
#: the star, so the epoch read stays answerable and bit-stable).
AS_OF_EPOCH = "epoch"


@dataclass(frozen=True)
class GeneratorConfig:
    """Population and stream-shape knobs.

    ``users`` is the population size; ``sessions`` of them actually log
    in (sampled with the cohort weights).  ``concurrency`` is the
    interleaving width — how many sessions are open at once in the
    stream's global order, which is also the natural actor count for
    closed-loop replay.  ``fact_multiplier`` scales the target world's
    fact table (the harness applies it); it rides in the header so a
    stream names the data scale it was meant for.  ``arrival_rate_per_s``
    is the nominal open-loop rate, metadata for the driver's pacing.
    """

    seed: int = 10
    users: int = 1_000
    sessions: int = 50
    events_per_session: tuple[int, int] = (6, 12)
    concurrency: int = 8
    datamarts: tuple[str, ...] = ("default",)
    fact_multiplier: int = 1
    arrival_rate_per_s: float | None = None
    abandon_rate: float = 0.05
    query_limit: int = 10

    def __post_init__(self) -> None:
        if self.users < 1 or self.sessions < 1:
            raise ReproError("users and sessions must be >= 1")
        low, high = self.events_per_session
        if low < 1 or high < low:
            raise ReproError("events_per_session must satisfy 1 <= low <= high")
        if self.concurrency < 1:
            raise ReproError("concurrency must be >= 1")
        if not self.datamarts:
            raise ReproError("need at least one datamart name")
        if self.fact_multiplier < 1:
            raise ReproError("fact_multiplier must be >= 1")
        if not 0.0 <= self.abandon_rate <= 1.0:
            raise ReproError("abandon_rate must be within [0, 1]")

    def to_dict(self) -> dict:
        data = asdict(self)
        data["events_per_session"] = list(self.events_per_session)
        data["datamarts"] = list(self.datamarts)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GeneratorConfig":
        kwargs = dict(data)
        kwargs["events_per_session"] = tuple(kwargs["events_per_session"])  # type: ignore[arg-type]
        kwargs["datamarts"] = tuple(kwargs["datamarts"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class TrafficEvent:
    """One replayable request in the global stream order.

    ``kind`` is ``login``/``logout`` or one of
    :data:`~repro.workload.cohorts.EVENT_KINDS`; ``payload`` is the
    kind-specific request document (query text and optional symbolic
    ``as_of`` for queries, target/condition for selections, the layer or
    recommendation kind for fetches, user/location/datamart for logins).
    """

    seq: int
    session: str
    user: str
    cohort: str
    datamart: str
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "session": self.session,
            "user": self.user,
            "cohort": self.cohort,
            "datamart": self.datamart,
            "kind": self.kind,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrafficEvent":
        return cls(
            seq=int(data["seq"]),  # type: ignore[arg-type]
            session=str(data["session"]),
            user=str(data["user"]),
            cohort=str(data["cohort"]),
            datamart=str(data["datamart"]),
            kind=str(data["kind"]),
            payload=dict(data.get("payload") or {}),  # type: ignore[arg-type]
        )


class EventStream:
    """A generated stream: a header (seed, config, profile) + events."""

    def __init__(self, header: dict, events: list[TrafficEvent]) -> None:
        self.header = header
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def seed(self) -> int:
        return int(self.header["seed"])

    def active_users(self) -> list[tuple[str, str, str]]:
        """Distinct ``(datamart, user, cohort)`` triples that log in."""
        seen: dict[tuple[str, str, str], None] = {}
        for event in self.events:
            if event.kind == "login":
                seen.setdefault((event.datamart, event.user, event.cohort))
        return list(seen)

    def describe(self, fact_rows: int | None = None) -> dict:
        """Summary statistics: what a replay of this stream will do.

        ``fact_rows`` (the target world's fact-table cardinality, after
        the header's ``fact_multiplier``) prices the stream in
        *facts-equivalent* volume: every query event nominally scans the
        fact table once, so ``query_events * fact_rows`` is the work an
        uncached engine would do — the scale-tier number the EXT9
        benchmarks record.
        """
        kinds: dict[str, int] = {}
        cohort_sessions: dict[str, int] = {}
        as_of_reads = 0
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
            if event.kind == "login":
                cohort_sessions[event.cohort] = (
                    cohort_sessions.get(event.cohort, 0) + 1
                )
            if event.kind == "query" and event.payload.get("as_of") is not None:
                as_of_reads += 1
        config = self.header.get("config", {})
        out = {
            "format": self.header.get("format"),
            "seed": self.seed,
            "population_users": config.get("users"),
            "active_users": len(self.active_users()),
            "sessions": kinds.get("login", 0),
            "events": len(self.events),
            "events_by_kind": dict(sorted(kinds.items())),
            "sessions_by_cohort": dict(sorted(cohort_sessions.items())),
            "as_of_reads": as_of_reads,
            "fact_multiplier": config.get("fact_multiplier"),
            "datamarts": config.get("datamarts"),
        }
        if fact_rows is not None:
            out["fact_rows"] = fact_rows
            out["facts_equivalent"] = kinds.get("query", 0) * fact_rows
        return out

    # -- serialization ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Canonical serialization: sorted keys, compact separators —
        byte-identical for identical (seed, params)."""
        lines = [json.dumps(self.header, sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
            for event in self.events
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "EventStream":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ReproError("empty workload stream")
        header = json.loads(lines[0])
        if header.get("format") != STREAM_FORMAT:
            raise ReproError(
                f"not a workload stream (format {header.get('format')!r}, "
                f"expected {STREAM_FORMAT!r})"
            )
        events = [TrafficEvent.from_dict(json.loads(line)) for line in lines[1:]]
        return cls(header, events)


class _OpenSession:
    """Generator-side state of one in-flight synthetic session."""

    __slots__ = ("session_id", "user", "cohort", "datamart", "remaining")

    def __init__(self, session_id, user, cohort, datamart, remaining):
        self.session_id = session_id
        self.user = user
        self.cohort = cohort
        self.datamart = datamart
        self.remaining = remaining


class WorkloadGenerator:
    """Produce replayable event streams from a profile + config.

    ``locations`` are the candidate login points (typically the target
    world's store coordinates, via
    :func:`~repro.workload.cohorts.candidate_locations`); cohorts with a
    spatial anchor cluster their members around it inside the candidate
    bounding box, which is what gives the synthetic population its
    spatially skewed envelope structure.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        config: GeneratorConfig,
        locations: Sequence[tuple[float, float]] = ((0.0, 0.0),),
    ) -> None:
        if not locations:
            raise ReproError("need at least one candidate login location")
        self.profile = profile
        self.config = config
        self.locations = tuple(
            (float(x), float(y)) for x, y in locations
        )
        xs = [x for x, _y in self.locations]
        ys = [y for _x, y in self.locations]
        self._bbox = (min(xs), min(ys), max(xs), max(ys))

    # -- draws (all through the injected rng) -------------------------------------

    @staticmethod
    def _weighted_choice(rng, pairs: Iterable[tuple[object, float]]):
        items = list(pairs)
        total = sum(weight for _item, weight in items)
        if total <= 0:
            raise ReproError("weighted choice over non-positive weights")
        point = rng.random() * total
        acc = 0.0
        for item, weight in items:
            acc += weight
            if point < acc:
                return item
        return items[-1][0]

    def _draw_cohort(self, rng) -> CohortSpec:
        return self._weighted_choice(
            rng, [(cohort, cohort.weight) for cohort in self.profile.cohorts]
        )

    def _draw_location(self, rng, cohort: CohortSpec) -> tuple[float, float]:
        """A login point: the candidate nearest the cohort's jittered
        anchor (clustered envelope), or a uniform candidate without one."""
        if cohort.anchor is None:
            return self.locations[rng.randrange(len(self.locations))]
        min_x, min_y, max_x, max_y = self._bbox
        extent = max(max_x - min_x, max_y - min_y) or 1.0
        ax = min_x + cohort.anchor[0] * (max_x - min_x)
        ay = min_y + cohort.anchor[1] * (max_y - min_y)
        tx = ax + rng.gauss(0.0, cohort.spread * extent)
        ty = ay + rng.gauss(0.0, cohort.spread * extent)
        return min(
            self.locations,
            key=lambda p: (p[0] - tx) ** 2 + (p[1] - ty) ** 2,
        )

    def _draw_event_payload(self, rng, cohort: CohortSpec) -> tuple[str, dict]:
        kind = self._weighted_choice(
            rng, list(cohort.mix_weights().items())
        )
        if kind == "query":
            text = self._weighted_choice(
                rng, list(zip(cohort.queries, cohort.query_weights))
            )
            payload: dict = {"q": text, "limit": self.config.query_limit}
            if cohort.as_of_rate > 0 and rng.random() < cohort.as_of_rate:
                payload["as_of"] = AS_OF_EPOCH
            return kind, payload
        if kind == "selection":
            target, condition = cohort.selections[
                rng.randrange(len(cohort.selections))
            ]
            return kind, {"target": target, "condition": condition}
        if kind == "layer":
            return kind, {
                "layer": cohort.layers[rng.randrange(len(cohort.layers))]
            }
        if kind == "recommendations":
            return kind, {
                "kind": ("queries", "layers", "members")[rng.randrange(3)]
            }
        return "view", {}

    # -- stream construction ------------------------------------------------------

    def stream(self) -> EventStream:
        """Generate the full event stream (fresh rng per call, so
        repeated calls on one generator are identical too)."""
        import random

        config = self.config
        rng = random.Random(config.seed)
        events: list[TrafficEvent] = []
        seq = 0
        #: population user index -> (user_id, cohort, location); assigned
        #: on first sampling so huge populations stay lazy.
        assigned: dict[int, tuple[str, CohortSpec, tuple[float, float]]] = {}
        open_sessions: list[_OpenSession] = []
        sessions_remaining = config.sessions
        session_counter = 0

        def emit(session: _OpenSession, kind: str, payload: dict) -> None:
            nonlocal seq
            seq += 1
            events.append(
                TrafficEvent(
                    seq=seq,
                    session=session.session_id,
                    user=session.user,
                    cohort=session.cohort,
                    datamart=session.datamart,
                    kind=kind,
                    payload=payload,
                )
            )

        def open_session() -> None:
            nonlocal sessions_remaining, session_counter
            index = rng.randrange(config.users)
            if index not in assigned:
                cohort = self._draw_cohort(rng)
                assigned[index] = (
                    f"wl-{index:07d}",
                    cohort,
                    self._draw_location(rng, cohort),
                )
            user_id, cohort, location = assigned[index]
            session = _OpenSession(
                session_id=f"s{session_counter:05d}",
                user=user_id,
                cohort=cohort.name,
                datamart=config.datamarts[
                    session_counter % len(config.datamarts)
                ],
                remaining=rng.randint(*config.events_per_session),
            )
            session_counter += 1
            sessions_remaining -= 1
            open_sessions.append(session)
            emit(
                session,
                "login",
                {
                    "user": user_id,
                    "location": [location[0], location[1]],
                },
            )

        while open_sessions or sessions_remaining:
            while sessions_remaining and len(open_sessions) < config.concurrency:
                open_session()
            session = open_sessions[rng.randrange(len(open_sessions))]
            if session.remaining <= 0:
                open_sessions.remove(session)
                if rng.random() >= config.abandon_rate:
                    emit(session, "logout", {})
                continue
            session.remaining -= 1
            cohort = self.profile.cohort(session.cohort)
            kind, payload = self._draw_event_payload(rng, cohort)
            emit(session, kind, payload)

        header = {
            "format": STREAM_FORMAT,
            "seed": config.seed,
            "config": config.to_dict(),
            "profile": self.profile.to_dict(),
            "events": len(events),
        }
        return EventStream(header, events)
