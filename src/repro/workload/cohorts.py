"""Cohort profiles: who the synthetic users are and what they ask for.

A :class:`WorkloadProfile` is a population blueprint — K cohorts, each a
:class:`CohortSpec` naming its share of the population, its GeoMDQL
query vocabulary (with draw weights), the layers it fetches, the spatial
selection reports it files, its event-kind mix, and (optionally) the
spatial anchor its members' login locations cluster around.

Profiles come from two places:

* :func:`default_profile` — a hand-written three-cohort blueprint over
  the paper's sales datamart vocabulary (the demo analysts' queries),
  used when no journal is available;
* :func:`profile_from_journal` — reverse ETL over a recorded
  :class:`~repro.reco.journal.WorkloadJournal`: organic users are
  greedily clustered by the Jaccard similarity of their event
  vocabularies (queries, layers, selection reports) and each cluster
  becomes a cohort whose query weights are the cluster's observed
  frequencies.  Synthetic traffic generated from such a profile is
  statistically faithful to the organic traffic it was mined from —
  the same event vocabulary, in the same proportions.

Everything here is plain data: deterministic ordering throughout (the
generator's byte-identical-stream guarantee depends on it), stdlib only,
JSON round-trippable via ``to_dict``/``from_dict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ReproError

__all__ = [
    "EVENT_KINDS",
    "CohortSpec",
    "WorkloadProfile",
    "default_profile",
    "profile_from_journal",
    "candidate_locations",
]

#: Replayable event kinds a cohort mix can weight (besides the implicit
#: ``login``/``logout`` framing the generator emits per session).
EVENT_KINDS = ("view", "query", "selection", "layer", "recommendations")


@dataclass(frozen=True)
class CohortSpec:
    """One cohort: a population share plus its request vocabulary.

    ``mix`` maps event kinds (:data:`EVENT_KINDS`) to draw weights; kinds
    whose vocabulary is empty (no ``layers``, no ``selections``) are
    skipped at draw time regardless of weight.  ``anchor`` is a
    fractional ``(x, y)`` position inside the candidate-location bounding
    box — members log in near it, giving the cohort a clustered spatial
    envelope — and ``spread`` is the cluster's standard deviation as a
    fraction of the box extent.  ``anchor=None`` logs members in at
    uniformly drawn candidates (no skew).
    """

    name: str
    weight: float
    queries: tuple[str, ...]
    query_weights: tuple[float, ...] = ()
    layers: tuple[str, ...] = ()
    selections: tuple[tuple[str, str], ...] = ()
    mix: tuple[tuple[str, float], ...] = (
        ("view", 4.0),
        ("query", 2.0),
        ("selection", 0.5),
        ("layer", 0.5),
        ("recommendations", 0.5),
    )
    as_of_rate: float = 0.0
    anchor: tuple[float, float] | None = None
    spread: float = 0.05
    #: Organic users this cohort was mined from (journal profiles only).
    origin_users: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ReproError(f"cohort {self.name!r}: weight must be positive")
        if not self.queries:
            raise ReproError(f"cohort {self.name!r}: needs at least one query")
        weights = self.query_weights or tuple(1.0 for _ in self.queries)
        if len(weights) != len(self.queries):
            raise ReproError(
                f"cohort {self.name!r}: query_weights length mismatch"
            )
        object.__setattr__(self, "query_weights", weights)
        if not 0.0 <= self.as_of_rate <= 1.0:
            raise ReproError(f"cohort {self.name!r}: as_of_rate not in [0, 1]")
        kinds = [kind for kind, _w in self.mix]
        unknown = set(kinds) - set(EVENT_KINDS)
        if unknown:
            raise ReproError(
                f"cohort {self.name!r}: unknown mix kinds {sorted(unknown)}"
            )

    def mix_weights(self) -> dict[str, float]:
        """The draw mix restricted to kinds this cohort can actually
        issue (a kind with an empty vocabulary draws nothing)."""
        out: dict[str, float] = {}
        for kind, weight in self.mix:
            if weight <= 0:
                continue
            if kind == "layer" and not self.layers:
                continue
            if kind == "selection" and not self.selections:
                continue
            out[kind] = out.get(kind, 0.0) + weight
        return out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "queries": list(self.queries),
            "query_weights": list(self.query_weights),
            "layers": list(self.layers),
            "selections": [list(pair) for pair in self.selections],
            "mix": [[kind, weight] for kind, weight in self.mix],
            "as_of_rate": self.as_of_rate,
            "anchor": list(self.anchor) if self.anchor is not None else None,
            "spread": self.spread,
            "origin_users": list(self.origin_users),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CohortSpec":
        anchor = data.get("anchor")
        return cls(
            name=str(data["name"]),
            weight=float(data["weight"]),  # type: ignore[arg-type]
            queries=tuple(data["queries"]),  # type: ignore[arg-type]
            query_weights=tuple(data.get("query_weights") or ()),
            layers=tuple(data.get("layers") or ()),
            selections=tuple(
                (pair[0], pair[1]) for pair in data.get("selections") or ()
            ),
            mix=tuple(
                (kind, float(weight)) for kind, weight in data["mix"]  # type: ignore[union-attr]
            ),
            as_of_rate=float(data.get("as_of_rate", 0.0)),  # type: ignore[arg-type]
            anchor=(
                (float(anchor[0]), float(anchor[1]))  # type: ignore[index]
                if anchor is not None
                else None
            ),
            spread=float(data.get("spread", 0.05)),  # type: ignore[arg-type]
            origin_users=tuple(data.get("origin_users") or ()),
        )


@dataclass(frozen=True)
class WorkloadProfile:
    """A population blueprint: cohorts plus where they came from."""

    cohorts: tuple[CohortSpec, ...]
    source: str = "builtin"

    def __post_init__(self) -> None:
        if not self.cohorts:
            raise ReproError("a workload profile needs at least one cohort")
        names = [cohort.name for cohort in self.cohorts]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate cohort names: {sorted(names)}")

    def cohort(self, name: str) -> CohortSpec:
        for spec in self.cohorts:
            if spec.name == name:
                return spec
        raise ReproError(f"profile has no cohort {name!r}")

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "cohorts": [cohort.to_dict() for cohort in self.cohorts],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadProfile":
        return cls(
            cohorts=tuple(
                CohortSpec.from_dict(entry) for entry in data["cohorts"]  # type: ignore[union-attr]
            ),
            source=str(data.get("source", "builtin")),
        )


# -- built-in blueprint -------------------------------------------------------

#: The demo analysts' vocabulary (kept literal so the profile stands on
#: its own — the generator must not import the demo fixtures).
_SHARED_QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
_CITY_QUERY = "SELECT SUM(StoreSales) FROM Sales BY Store.City"
_NOISE_QUERIES = (
    "SELECT SUM(StoreCost) FROM Sales BY Time.Month",
    "SELECT SUM(UnitSales) FROM Sales BY Customer.City",
)
_SELECTION = (
    "GeoMD.Store.City",
    "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km",
)


def default_profile() -> WorkloadProfile:
    """Three cohorts over the paper's sales vocabulary.

    *analysts* mirror Ana/Bruno (roll-ups, the airport selection, the
    ``Airport`` layer, occasional recommendations and as-of reads) and
    cluster in the south-west of the world; *planners* run the per-city
    revenue roll-up from the north-east; *wanderers* run the noise
    queries from anywhere.
    """
    return WorkloadProfile(
        source="builtin",
        cohorts=(
            CohortSpec(
                name="analysts",
                weight=0.5,
                queries=(_SHARED_QUERY, _CITY_QUERY),
                query_weights=(2.0, 1.0),
                layers=("Airport",),
                selections=(_SELECTION,),
                as_of_rate=0.1,
                anchor=(0.25, 0.3),
                spread=0.08,
            ),
            CohortSpec(
                name="planners",
                weight=0.3,
                queries=(_CITY_QUERY,),
                selections=(_SELECTION,),
                mix=(
                    ("view", 5.0),
                    ("query", 2.0),
                    ("selection", 0.25),
                    ("recommendations", 0.25),
                ),
                anchor=(0.75, 0.7),
                spread=0.06,
            ),
            CohortSpec(
                name="wanderers",
                weight=0.2,
                queries=_NOISE_QUERIES,
                mix=(("view", 3.0), ("query", 2.0), ("recommendations", 0.5)),
            ),
        ),
    )


# -- reverse ETL over the workload journal ------------------------------------


@dataclass
class _UserVocabulary:
    """One organic user's journaled event vocabulary."""

    user_id: str
    query_counts: dict[str, int] = field(default_factory=dict)
    layers: set[str] = field(default_factory=set)
    selections: set[tuple[str, str]] = field(default_factory=set)
    kind_counts: dict[str, int] = field(default_factory=dict)

    @property
    def signature(self) -> frozenset:
        """The identity the clustering compares: what this user asks for."""
        return frozenset(
            [("query", q) for q in self.query_counts]
            + [("layer", layer) for layer in self.layers]
            + [("selection",) + pair for pair in self.selections]
        )


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def profile_from_journal(
    journal,
    datamart: str,
    *,
    similarity: float = 0.5,
    view_weight: float = 4.0,
    reco_weight: float = 0.5,
    as_of_rate: float = 0.05,
) -> WorkloadProfile:
    """Mine cohort parameters from a recorded workload journal.

    The reverse-ETL pass: every journaled user's event vocabulary
    (distinct queries with frequencies, fetched layers, filed selection
    reports) becomes a signature; users are greedily clustered —
    in sorted order, a user joins the first cluster whose union
    signature is at least ``similarity`` Jaccard-similar, else founds a
    new one — and each cluster becomes one :class:`CohortSpec`:

    * ``weight`` — the cluster's share of the journaled population;
    * ``queries``/``query_weights`` — the cluster's union vocabulary,
      weighted by observed run counts (so replay reproduces the organic
      query distribution, not just its support);
    * ``layers``/``selections`` — the cluster unions, sorted;
    * ``mix`` — the journaled kind frequencies per member, plus
      ``view_weight`` views and ``reco_weight`` recommendation fetches
      (neither is journaled: views are reads of the session's own
      materialized view, recommendations never journal by design).

    The journal records no coordinates, so mined cohorts carry no
    spatial anchor: pass login-location candidates to the generator to
    decide where the synthetic members live.
    """
    users = journal.users(datamart)
    if not users:
        raise ReproError(
            f"journal has no events for datamart {datamart!r}; "
            "profile_from_journal needs recorded traffic to mine"
        )
    vocabularies: list[_UserVocabulary] = []
    for user_id in users:
        vocabulary = _UserVocabulary(user_id)
        for event in journal.events(datamart, user_id):
            vocabulary.kind_counts[event.kind] = (
                vocabulary.kind_counts.get(event.kind, 0) + 1
            )
            if event.kind == "query":
                text = event.payload["q"]
                vocabulary.query_counts[text] = (
                    vocabulary.query_counts.get(text, 0) + 1
                )
            elif event.kind == "layer":
                vocabulary.layers.add(event.payload["layer"])
            elif event.kind == "selection":
                vocabulary.selections.add(
                    (event.payload["target"], event.payload["condition"])
                )
        if vocabulary.signature:
            vocabularies.append(vocabulary)
    if not vocabularies:
        raise ReproError(
            f"datamart {datamart!r}: journaled users have empty vocabularies"
        )

    clusters: list[list[_UserVocabulary]] = []
    for vocabulary in vocabularies:  # users arrive sorted by id
        for cluster in clusters:
            union = frozenset().union(*(v.signature for v in cluster))
            if _jaccard(vocabulary.signature, union) >= similarity:
                cluster.append(vocabulary)
                break
        else:
            clusters.append([vocabulary])

    total_users = sum(len(cluster) for cluster in clusters)
    cohorts = []
    for index, cluster in enumerate(clusters):
        query_counts: dict[str, int] = {}
        layers: set[str] = set()
        selections: set[tuple[str, str]] = set()
        kind_counts: dict[str, int] = {}
        for member in cluster:
            for text, count in member.query_counts.items():
                query_counts[text] = query_counts.get(text, 0) + count
            layers |= member.layers
            selections |= member.selections
            for kind, count in member.kind_counts.items():
                kind_counts[kind] = kind_counts.get(kind, 0) + count
        queries = sorted(query_counts) or [_SHARED_QUERY]
        members = len(cluster)
        mix = [
            ("view", view_weight),
            ("query", kind_counts.get("query", 0) / members or 1.0),
            ("selection", kind_counts.get("selection", 0) / members),
            ("layer", kind_counts.get("layer", 0) / members),
            ("recommendations", reco_weight),
        ]
        cohorts.append(
            CohortSpec(
                name=f"journal-cohort-{index + 1}",
                weight=members / total_users,
                queries=tuple(queries),
                query_weights=tuple(
                    float(query_counts.get(text, 1)) for text in queries
                ),
                layers=tuple(sorted(layers)),
                selections=tuple(sorted(selections)),
                mix=tuple(
                    (kind, weight) for kind, weight in mix if weight > 0
                ),
                as_of_rate=as_of_rate,
                origin_users=tuple(
                    sorted(member.user_id for member in cluster)
                ),
            )
        )
    return WorkloadProfile(
        cohorts=tuple(cohorts), source=f"journal:{datamart}"
    )


def candidate_locations(points: Sequence) -> tuple[tuple[float, float], ...]:
    """Normalize a sequence of points/pairs into location candidates."""
    out = []
    for point in points:
        if hasattr(point, "x") and hasattr(point, "y"):
            out.append((float(point.x), float(point.y)))
        else:
            x, y = point
            out.append((float(x), float(y)))
    if not out:
        raise ReproError("need at least one candidate login location")
    return tuple(out)
