"""Health-route scraping around replay runs.

The portal's unauthenticated ``/api/v1/health`` route already exposes
every counter the benchmark JSON wants — query-cache hits/misses, the
shared view store's patches-vs-rebuilds split, the state backend's
spill/rehydration counts, the recommender memo, and (when the process
started under ``REPRO_SANITIZE=1``) per-lock contention and hold
totals.  This module turns a *pair* of snapshots bracketing a replay
into the numbers a trajectory wants:

* :func:`merge_health` — sum one snapshot per worker into a single
  cluster-wide snapshot (each worker has its own L1 caches; backend
  counters are per-process too);
* :func:`health_window` — before/after deltas with *window* hit rates
  (hits and misses that happened during the run, not since boot);
* :func:`contention_summary` — the sanitizer's per-lock counters
  reduced to the few that matter for a load report;
* :func:`environment_provenance` — the host/interpreter/git facts every
  BENCH JSON records so trajectories across PRs stay comparable.

Everything here is pure dict plumbing — no sockets.  Targets (see
:mod:`repro.workload.driver`) own *how* health is fetched; this module
owns what is extracted from it.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = [
    "merge_health",
    "health_window",
    "contention_summary",
    "environment_provenance",
]


def _rate(hits: int, misses: int) -> float | None:
    total = hits + misses
    if total <= 0:
        return None
    return round(hits / total, 4)


def merge_health(snapshots: list[dict]) -> dict:
    """Sum per-worker health snapshots into one cluster-wide view.

    Counters add; sizes add (each worker has its own L1); per-datamart
    blocks merge by tenant name; ``star_generation`` must agree across
    workers (same deterministic factory) and is carried through.  A
    single-snapshot list passes through semantically unchanged, so
    callers never branch on the target topology.
    """
    if not snapshots:
        return {}
    query_cache = {"size": 0, "hits": 0, "misses": 0}
    sessions_backend = {"spills": 0, "rehydrations": 0}
    recommender = {"memo_hits": 0, "memo_misses": 0}
    journal_events = 0
    active_sessions = 0
    datamarts: dict[str, dict] = {}
    locks: list[dict] = []
    for snapshot in snapshots:
        cache = snapshot.get("query_cache") or {}
        query_cache["size"] += cache.get("size", 0)
        query_cache["hits"] += cache.get("hits", 0)
        query_cache["misses"] += cache.get("misses", 0)
        active_sessions += snapshot.get("active_sessions", 0)
        reco = snapshot.get("recommender") or {}
        recommender["memo_hits"] += reco.get("memo_hits", 0)
        recommender["memo_misses"] += reco.get("memo_misses", 0)
        # journal.stats() is keyed per datamart: sum the event counts.
        for tenant_stats in (snapshot.get("journal") or {}).values():
            journal_events += tenant_stats.get("events", 0)
        backend = snapshot.get("state_backend") or {}
        store = backend.get("sessions") or {}
        sessions_backend["spills"] += store.get("spills", 0)
        sessions_backend["rehydrations"] += store.get("rehydrations", 0)
        for tenant in snapshot.get("datamarts", ()):
            merged = datamarts.setdefault(
                tenant["name"],
                {
                    "name": tenant["name"],
                    "sessions_started": 0,
                    "star_generation": tenant.get("star_generation"),
                    "view_store": None,
                },
            )
            merged["sessions_started"] += tenant.get("sessions_started", 0)
            view = tenant.get("view_store")
            if view is not None:
                if merged["view_store"] is None:
                    merged["view_store"] = {
                        "hits": 0,
                        "misses": 0,
                        "builds": 0,
                        "patches": 0,
                        "carries": 0,
                        "invalidations": 0,
                    }
                for key in merged["view_store"]:
                    merged["view_store"][key] += view.get(key, 0)
        lock_stats = snapshot.get("locks")
        if lock_stats is not None:
            locks.append(lock_stats)
    query_cache["hit_rate"] = _rate(query_cache["hits"], query_cache["misses"])
    recommender["memo_hit_rate"] = _rate(
        recommender["memo_hits"], recommender["memo_misses"]
    )
    for merged in datamarts.values():
        view = merged["view_store"]
        if view is not None:
            view["hit_rate"] = _rate(view["hits"], view["misses"])
    return {
        "workers": len(snapshots),
        "query_cache": query_cache,
        "recommender": recommender,
        "journal_events": journal_events,
        "active_sessions": active_sessions,
        "sessions_backend": sessions_backend,
        "datamarts": [datamarts[name] for name in sorted(datamarts)],
        "locks": _merge_locks(locks) if locks else None,
    }


def _merge_locks(lock_stats: list[dict]) -> dict:
    """Sum sanitizer per-lock counters across workers."""
    merged: dict[str, dict] = {}
    cycles = 0
    for stats in lock_stats:
        cycles = max(cycles, len(stats.get("cycles") or ()))
        for name, counters in (stats.get("locks") or {}).items():
            into = merged.setdefault(
                name,
                {
                    "acquisitions": 0,
                    "contentions": 0,
                    "wait_total_s": 0.0,
                    "hold_total_s": 0.0,
                    "max_wait_s": 0.0,
                    "max_hold_s": 0.0,
                },
            )
            into["acquisitions"] += counters.get("acquisitions", 0)
            into["contentions"] += counters.get("contentions", 0)
            into["wait_total_s"] += counters.get("wait_total_s", 0.0)
            into["hold_total_s"] += counters.get("hold_total_s", 0.0)
            into["max_wait_s"] = max(
                into["max_wait_s"], counters.get("max_wait_s", 0.0)
            )
            into["max_hold_s"] = max(
                into["max_hold_s"], counters.get("max_hold_s", 0.0)
            )
    return {"locks": merged, "cycles": cycles}


_WINDOW_COUNTERS = (
    ("query_cache", ("hits", "misses")),
    ("recommender", ("memo_hits", "memo_misses")),
    ("sessions_backend", ("spills", "rehydrations")),
)


def health_window(before: dict, after: dict) -> dict:
    """What happened *between* two merged snapshots.

    Deltas for every additive counter, plus window hit rates derived
    from the deltas — a run against a warm process reports the run's
    own cache behaviour, not the process's lifetime average.
    """
    window: dict = {}
    for block_name, keys in _WINDOW_COUNTERS:
        before_block = before.get(block_name) or {}
        after_block = after.get(block_name) or {}
        block = {
            key: after_block.get(key, 0) - before_block.get(key, 0)
            for key in keys
        }
        window[block_name] = block
    window["query_cache"]["hit_rate"] = _rate(
        window["query_cache"]["hits"], window["query_cache"]["misses"]
    )
    window["recommender"]["memo_hit_rate"] = _rate(
        window["recommender"]["memo_hits"],
        window["recommender"]["memo_misses"],
    )
    window["journal_events"] = after.get("journal_events", 0) - before.get(
        "journal_events", 0
    )
    view_window: dict[str, dict] = {}
    before_tenants = {
        tenant["name"]: tenant for tenant in before.get("datamarts", ())
    }
    for tenant in after.get("datamarts", ()):
        view_after = tenant.get("view_store")
        if view_after is None:
            continue
        view_before = (
            before_tenants.get(tenant["name"], {}).get("view_store") or {}
        )
        delta = {
            key: view_after.get(key, 0) - view_before.get(key, 0)
            for key in (
                "hits",
                "misses",
                "builds",
                "patches",
                "carries",
                "invalidations",
            )
        }
        delta["hit_rate"] = _rate(delta["hits"], delta["misses"])
        view_window[tenant["name"]] = delta
    window["view_store"] = view_window
    window["locks"] = (
        contention_summary(after["locks"]) if after.get("locks") else None
    )
    return window


def contention_summary(merged_locks: dict, top: int = 5) -> dict:
    """The load-report view of the sanitizer's lock table.

    Totals across every lock plus the ``top`` most contended ones
    (by contention count, then wait time) — enough to see *where*
    threads queue without shipping the whole table into the JSON.
    """
    locks = merged_locks.get("locks") or {}
    total_acquisitions = sum(c["acquisitions"] for c in locks.values())
    total_contentions = sum(c["contentions"] for c in locks.values())
    total_wait = sum(c["wait_total_s"] for c in locks.values())
    ranked = sorted(
        locks.items(),
        key=lambda item: (item[1]["contentions"], item[1]["wait_total_s"]),
        reverse=True,
    )
    return {
        "acquisitions": total_acquisitions,
        "contentions": total_contentions,
        "contention_rate": _rate(
            total_contentions, total_acquisitions - total_contentions
        ),
        "wait_total_s": round(total_wait, 6),
        "cycles": merged_locks.get("cycles", 0),
        "top_contended": [
            {
                "name": name,
                "contentions": counters["contentions"],
                "wait_total_s": round(counters["wait_total_s"], 6),
                "max_wait_s": round(counters["max_wait_s"], 6),
            }
            for name, counters in ranked[:top]
            if counters["contentions"] > 0
        ],
    }


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_provenance(seed: int | None = None) -> dict:
    """The facts that make two BENCH JSONs comparable (or not)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "repro_env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "generator_seed": seed,
    }
