"""Scale tiers and portal factories for the workload engine.

A :class:`WorkloadTier` binds a generator configuration (population,
sessions, interleaving width, fact multiplier) to a world scale, so
"run the medium tier" means the same thing in the EXT9 benchmark, the
``repro workload`` CLI and CI.  The tier ladder:

========  ============  ==========  ========  =================
tier      population    sessions    world     fact multiplier
========  ============  ==========  ========  =================
smoke     200           12          small     1
small     2,000         48          small     1
medium    50,000        240         medium    2
large     1,000,000     1,200       large     5
========  ============  ==========  ========  =================

Populations are *numbers* — the generator materializes only the users
that sessions actually sample — so the large tier's million users cost
its 1,200 sessions, not a million profile objects.  Only the sampled
(active) users are registered on the portal.

:func:`build_workload_portal` mirrors the serving topologies the EXT7
benchmark established: without a backend, a single-process in-memory
portal (explicit in-heap stores, immune to ``REPRO_BACKEND`` in the
surrounding environment); with one, the worker-pool wiring — every
store backend-backed under fixed namespaces — suitable as a
:class:`~repro.cluster.pool.WorkerPool` app factory.  Both register the
same users over the same deterministic world, which is what makes the
identical-response gate between targets meaningful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ReproError
from repro.workload.cohorts import (
    WorkloadProfile,
    candidate_locations,
    default_profile,
    profile_from_journal,
)
from repro.workload.generator import (
    EventStream,
    GeneratorConfig,
    WorkloadGenerator,
)

__all__ = [
    "WORKLOAD_TENANTS",
    "WORLD_SCALES",
    "WORKLOAD_TIERS",
    "WorkloadTier",
    "tier",
    "build_tier_world",
    "generator_for_tier",
    "build_workload_portal",
    "demo_journal_profile",
    "stream_for_tier",
]

#: The multi-tenant layout every workload portal uses: four identical
#: tenants, ring-balanced 2/2 across a two-worker pool (the EXT7 layout).
WORKLOAD_TENANTS = ("dm-0", "dm-1", "dm-2", "dm-3")

THRESHOLD = 3


def _world_scales() -> dict:
    from repro.data import WorldConfig

    return {
        "small": WorldConfig(seed=7, sales=2_000),
        "medium": WorldConfig(
            seed=7,
            cities_per_state=8,
            stores_per_city=5,
            customers_per_city=20,
            sales=10_000,
        ),
        "large": WorldConfig(
            seed=7,
            cities_per_state=10,
            stores_per_city=8,
            customers_per_city=30,
            sales=50_000,
        ),
    }


class _LazyScales:
    """Mapping facade so importing this module doesn't import the data
    package until a world is actually needed."""

    def __getitem__(self, key: str):
        return _world_scales()[key]

    def keys(self):
        return _world_scales().keys()

    def __iter__(self):
        return iter(_world_scales())


#: The benchmark world-size ladder (shared with ``run_benchmarks.py``).
WORLD_SCALES = _LazyScales()


@dataclass(frozen=True)
class WorkloadTier:
    """One named point on the scale ladder."""

    name: str
    world_scale: str
    config: GeneratorConfig
    description: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "world_scale": self.world_scale,
            "config": self.config.to_dict(),
            "description": self.description,
        }


WORKLOAD_TIERS: dict[str, WorkloadTier] = {
    "smoke": WorkloadTier(
        name="smoke",
        world_scale="small",
        config=GeneratorConfig(
            seed=10,
            users=200,
            sessions=12,
            events_per_session=(5, 9),
            concurrency=4,
            datamarts=WORKLOAD_TENANTS,
            fact_multiplier=1,
        ),
        description="CI-affordable sanity tier (seconds, not minutes)",
    ),
    "small": WorkloadTier(
        name="small",
        world_scale="small",
        config=GeneratorConfig(
            seed=10,
            users=2_000,
            sessions=48,
            events_per_session=(6, 12),
            concurrency=8,
            datamarts=WORKLOAD_TENANTS,
            fact_multiplier=1,
        ),
        description="The historical fixture scale, now with real traffic",
    ),
    "medium": WorkloadTier(
        name="medium",
        world_scale="medium",
        config=GeneratorConfig(
            seed=10,
            users=50_000,
            sessions=240,
            events_per_session=(8, 14),
            concurrency=16,
            datamarts=WORKLOAD_TENANTS,
            fact_multiplier=2,
        ),
        description="50k-user population, 20k-row facts, 1M+ facts-equivalent",
    ),
    "large": WorkloadTier(
        name="large",
        world_scale="large",
        config=GeneratorConfig(
            seed=10,
            users=1_000_000,
            sessions=1_200,
            events_per_session=(8, 16),
            concurrency=32,
            datamarts=WORKLOAD_TENANTS,
            fact_multiplier=5,
        ),
        description="Million-user population over a 250k-row fact table",
    ),
}


def tier(name: str) -> WorkloadTier:
    try:
        return WORKLOAD_TIERS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_TIERS))
        raise ReproError(f"unknown workload tier {name!r} (known: {known})")


def build_tier_world(tier: WorkloadTier):
    """The tier's deterministic world, fact multiplier applied."""
    from repro.data import generate_world

    base = _world_scales()[tier.world_scale]
    config = dataclasses.replace(
        base, sales=base.sales * tier.config.fact_multiplier
    )
    return generate_world(config)


def generator_for_tier(
    tier: WorkloadTier,
    world,
    profile: WorkloadProfile | None = None,
) -> WorkloadGenerator:
    """A generator whose login locations are the world's store points."""
    return WorkloadGenerator(
        profile if profile is not None else default_profile(),
        tier.config,
        candidate_locations(store.location for store in world.stores),
    )


def _synthetic_profile(user_id: str):
    """A registered profile for one synthetic user (same role as the
    paper's regional manager, so every personalization rule applies)."""
    from repro.data import build_motivating_user_model
    from repro.sus.model import UserProfile

    profile = UserProfile(build_motivating_user_model(), user_id=user_id)
    profile.set("DecisionMaker.name", user_id)
    profile.set("DecisionMaker.dm2role.name", "RegionalSalesManager")
    return profile


def build_workload_portal(
    world,
    active_users,
    datamarts=WORKLOAD_TENANTS,
    backend=None,
    live_cap: int = 256,
    namespace: str = "wl",
):
    """A multi-tenant portal ready to replay a generated stream.

    ``active_users`` is :meth:`EventStream.active_users` (or any
    iterable of ``(datamart, user_id, cohort)``): only sampled users are
    registered, which is what keeps million-user population tiers cheap.
    With ``backend``, every store is backend-backed under
    ``{namespace}-*`` namespaces — pass the same backend to every worker
    of a pool; without, explicit in-heap stores.
    """
    from repro.data import (
        ALL_PAPER_RULES,
        WorldGeoSource,
        build_motivating_user_model,
        build_sales_star,
    )
    from repro.lru import ThreadSafeLRU
    from repro.personalization import PersonalizationEngine, ViewStore
    from repro.reco.journal import WorkloadJournal
    from repro.service import (
        DatamartRegistry,
        InMemorySessionStore,
        PersonalizationService,
    )
    from repro.web import PortalApp

    users_by_tenant: dict[str, list[str]] = {}
    for datamart, user_id, _cohort in active_users:
        users_by_tenant.setdefault(datamart, []).append(user_id)
    unknown = set(users_by_tenant) - set(datamarts)
    if unknown:
        raise ReproError(
            f"stream logs into unregistered datamarts: {sorted(unknown)}"
        )
    registry = DatamartRegistry()
    for index, name in enumerate(datamarts):
        if backend is not None:
            from repro.cluster.stores import BackendViewStore

            view_store = BackendViewStore(
                backend, namespace=f"{namespace}-views-{name}"
            )
        else:
            view_store = ViewStore(128)
        engine = PersonalizationEngine(
            build_sales_star(world),
            build_motivating_user_model(),
            geo_source=WorldGeoSource(world),
            parameters={"threshold": THRESHOLD},
            view_store=view_store,
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        tenant = registry.register(
            name, engine, description="workload tenant", default=index == 0
        )
        for user_id in sorted(set(users_by_tenant.get(name, ()))):
            tenant.register_user(_synthetic_profile(user_id))
    if backend is not None:
        from repro.cluster.stores import (
            BackendQueryCache,
            BackendSessionStore,
            BackendWorkloadJournal,
        )

        sessions = BackendSessionStore(
            backend,
            namespace=f"{namespace}-sessions",
            ttl=3600.0,
            max_live=live_cap,
        )
        service = PersonalizationService(
            registry,
            session_store=sessions,
            query_cache=BackendQueryCache(
                backend, namespace=f"{namespace}-qcache"
            ),
            journal=BackendWorkloadJournal(
                backend, namespace=f"{namespace}-journal"
            ),
        )
        sessions.resolver = service._rehydrate_session
    else:
        service = PersonalizationService(
            registry,
            session_store=InMemorySessionStore(
                ttl=3600.0, max_sessions=max(live_cap, 64)
            ),
            query_cache=ThreadSafeLRU(256),
            journal=WorkloadJournal(),
        )
    return PortalApp(service=service)


def demo_journal_profile(similarity: float = 0.5) -> WorkloadProfile:
    """Reverse-ETL seed: cohorts mined from the demo workload's journal.

    Builds a throwaway single-tenant portal, replays the paper's
    three-analyst demo workload through it, and derives cohort
    parameters from the recorded journal — the profile whose replayed
    traffic the containment test checks against the organic sessions.
    """
    from repro.data import (
        ALL_PAPER_RULES,
        WorldGeoSource,
        build_motivating_user_model,
        build_regional_manager_profile,
        build_sales_star,
        generate_world,
        replay_demo_workload,
    )
    from repro.personalization import PersonalizationEngine
    from repro.web import PortalApp

    world = generate_world(_world_scales()["small"])
    engine = PersonalizationEngine(
        build_sales_star(world),
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(build_regional_manager_profile(build_motivating_user_model()))
    replay_demo_workload(app, world)
    return profile_from_journal(
        app.service.journal, "sales", similarity=similarity
    )


def stream_for_tier(
    tier: WorkloadTier,
    world=None,
    profile: WorkloadProfile | None = None,
) -> EventStream:
    """Convenience: world → generator → stream in one call."""
    if world is None:
        world = build_tier_world(tier)
    return generator_for_tier(tier, world, profile=profile).stream()
