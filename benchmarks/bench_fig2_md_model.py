"""FIG2 — regenerate the Fig. 2 MD model for sales analysis.

Builds the sales schema, compiles it to its UML-profile form and renders
the class diagram; asserts the Fig. 2 structure on every run.
"""

from repro.data import build_sales_schema
from repro.mdm import schema_to_uml
from repro.uml import to_plantuml


def _build_and_render():
    schema = build_sales_schema()
    model = schema_to_uml(schema)
    text = to_plantuml(model)
    return schema, model, text


def test_fig2_md_model(benchmark):
    schema, model, text = benchmark(_build_and_render)

    # Fig. 2 structure.
    fact = schema.fact("Sales")
    assert fact.dimension_names == ("Customer", "Store", "Product", "Time")
    assert set(fact.measures) == {"UnitSales", "StoreCost", "StoreSales"}
    assert schema.dimension("Store").rollup_path("State") == (
        "Store",
        "City",
        "State",
    )
    assert "class Sales <<Fact>>" in text
    assert model.validate() == []

    benchmark.extra_info["classes"] = len(model.classes)
    benchmark.extra_info["associations"] = len(model.associations)
    print("\n[FIG2] sales MD model regenerated:")
    print(f"  fact=Sales, dimensions={list(fact.dimension_names)}")
    print(f"  UML classes={len(model.classes)}, associations={len(model.associations)}")
