"""ABL1 — spatial index ablation: R-tree vs grid vs brute force.

The Example 5.2 hot loop is a radius query around the user's location;
this ablation measures the three strategies the kernel offers on the
large world's store set.  Expected shape: both indexes beat brute force,
with the gap growing with the point count.
"""

import time

from conftest import build_engine_at_scale

from repro.geometry import GridIndex, STRtree, brute_force_within_distance

RADIUS = 5_000.0


def _entries(world):
    return [(s.location, s.name) for s in world.stores]


def test_abl1_spatial_index(benchmark):
    world, _star, _engine = build_engine_at_scale("large")
    entries = _entries(world)
    center = world.cities[0].location
    tree = STRtree(entries)

    result = benchmark(tree.within_distance, center, RADIUS)
    expected = sorted(brute_force_within_distance(entries, center, RADIUS))
    assert sorted(result) == expected

    print(f"\n[ABL1] radius query strategies over {len(entries)} stores:")
    print("  strategy     build(ms)   query(ms)   hits")
    for name, factory in (
        ("brute", None),
        ("grid", GridIndex),
        ("strtree", STRtree),
    ):
        start = time.perf_counter()
        index = factory(entries) if factory else None
        t_build = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        for _ in range(20):
            if index is None:
                hits = brute_force_within_distance(entries, center, RADIUS)
            else:
                hits = index.within_distance(center, RADIUS)
        t_query = (time.perf_counter() - start) * 1000 / 20
        assert sorted(hits) == expected
        print(f"  {name:<10} {t_build:9.2f}  {t_query:9.3f}   {len(hits)}")
