"""FIG3 — regenerate the SUS profile (the Fig. 3 metamodel)."""

from repro.sus import sus_metamodel
from repro.uml import to_plantuml


def _build():
    model = sus_metamodel()
    return model, to_plantuml(model)


def test_fig3_sus_profile(benchmark):
    model, text = benchmark(_build)
    profile = model.profiles["SUS"]
    assert set(profile.stereotypes) == {
        "User",
        "Session",
        "Characteristic",
        "LocationContext",
        "SpatialSelection",
    }
    assert model.enumerations["GeometricTypes"].literals == (
        "POINT",
        "LINE",
        "POLYGON",
        "COLLECTION",
    )
    print("\n[FIG3] SUS profile regenerated:")
    print(f"  stereotypes={sorted(profile.stereotypes)}")
    print(f"  GeometricTypes={list(model.enumerations['GeometricTypes'].literals)}")
