"""EX53 — the interest-tracking pair (Example 5.3).

Times (a) the acquisition rule firing on a SpatialSelection event and
(b) the threshold-triggered TrainAirportCity widening with its nested
Intersection/unary-Distance evaluation over the (train × city × airport)
product.
"""

from repro.data import build_regional_manager_profile

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


def test_ex53_acquisition(benchmark, engine, world, user_schema):
    profile = build_regional_manager_profile(user_schema)
    session = engine.start_session(profile, location=world.stores[0].location)

    def fire_event():
        return session.record_spatial_selection("GeoMD.Store.City", CONDITION)

    outcomes = benchmark(fire_event)
    assert [o.rule_name for o in outcomes] == ["IntAirportCity"]
    assert profile.degree("AirportCity") > 0
    print(
        f"\n[EX53a] IntAirportCity fired once per event "
        f"(benchmark looped; degree reached "
        f"{profile.degree('AirportCity')}, one increment per round)"
    )
    session.end()


def test_ex53_train_widening(benchmark, engine, world, user_schema):
    profile = build_regional_manager_profile(user_schema)
    session = engine.start_session(profile, location=world.stores[0].location)
    for _ in range(4):  # push degree past the threshold of 3
        session.record_spatial_selection("GeoMD.Store.City", CONDITION)

    def rerun():
        session.selection.members.pop(("Store", "City"), None)
        return session.rerun_instance_rules()

    outcomes = benchmark(rerun)
    train_outcome = next(o for o in outcomes if o.rule_name == "TrainAirportCity")
    cities = session.selection.members.get(("Store", "City"), set())
    assert cities
    combos = (
        len(world.train_lines) * len(world.cities) * len(world.airports)
    )
    assert train_outcome.iterations == combos
    print(
        f"\n[EX53b] TrainAirportCity: {train_outcome.iterations} "
        f"(train x city x airport) combinations -> {len(cities)} cities "
        f"with a <50km train connection: {sorted(cities)}"
    )
    session.end()
