"""FIG5 — exercise the PRML metamodel: parse + print every paper rule."""

from repro.data import ALL_PAPER_RULES
from repro.prml import SpatialFunction, parse_rule, print_rule


def _round_trip_all():
    rules = {}
    for name, source in ALL_PAPER_RULES.items():
        rule = parse_rule(source)
        text = print_rule(rule)
        reparsed = parse_rule(text)
        rules[name] = (rule, reparsed)
    return rules


def test_fig5_prml_metamodel(benchmark):
    rules = benchmark(_round_trip_all)
    for name, (rule, reparsed) in rules.items():
        assert rule == reparsed, name
    operators = sorted(fn.value for fn in SpatialFunction)
    assert operators == [
        "Cross",
        "Disjoint",
        "Distance",
        "Equals",
        "Inside",
        "Intersect",
        "Intersection",
    ]
    benchmark.extra_info["rules"] = len(rules)
    print("\n[FIG5] PRML metamodel exercised:")
    print(f"  paper rules round-tripped: {sorted(rules)}")
    print(f"  spatial operators: {operators}")
