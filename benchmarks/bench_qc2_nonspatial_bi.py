"""QC2 — non-spatial BI tools benefit (Section 4.2.4).

"Each decision maker could take advantage ... even if the BI tool used
for the analysis does not support spatial data."  The bench runs a purely
relational GeoMDQL query (no spatial operator in the query text) over the
personalized view and checks the result equals a spatially-filtered query
a spatial engine would have had to run itself.
"""

from repro.data import build_regional_manager_profile
from repro.olap import execute, parse_query

PLAIN_QUERY = "SELECT SUM(StoreSales), COUNT(*) FROM Sales BY Store.State"
SPATIAL_QUERY = (
    "SELECT SUM(StoreSales), COUNT(*) FROM Sales BY Store.State "
    "WHERE DISTANCE(Store, LAYER Airport) < 20 KM"
)

NEAR_AIRPORT_STORES = """\
Rule:nearAirportStores When SessionStart do
  Foreach s in (GeoMD.Store)
    Foreach a in (GeoMD.Airport)
      If (Distance(s.geometry, a.geometry) < 20km) then
        SelectInstance(s)
      endIf
    endForeach
  endForeach
endWhen
"""


def test_qc2_nonspatial_bi(benchmark, engine, star, user_schema):
    # Replace the location rule with an airports-proximity instance rule so
    # the personalized view mirrors the spatial WHERE clause exactly.
    engine.rule("5kmStores").enabled = False
    engine.rule("TrainAirportCity").enabled = False
    engine.add_rule(NEAR_AIRPORT_STORES)
    profile = build_regional_manager_profile(user_schema)
    session = engine.start_session(profile)
    view = session.view()

    plain = parse_query(PLAIN_QUERY, view.schema)

    def non_spatial_tool():
        return execute(star, plain, view.fact_rows)

    personalized_result = benchmark(non_spatial_tool)

    # A spatial engine evaluating the condition itself must agree.
    spatial_result = execute(star, parse_query(SPATIAL_QUERY, view.schema))
    assert personalized_result.cells == spatial_result.cells
    assert personalized_result.fact_rows_scanned < len(star.fact_table())

    print("\n[QC2] non-spatial BI over personalized view == spatial engine:")
    print(personalized_result.format_table())
    print(
        f"  personalized scan: {personalized_result.fact_rows_scanned} rows; "
        f"spatial-engine scan: {spatial_result.fact_rows_scanned} rows "
        f"(of {len(star.fact_table())})"
    )
    session.end()
