"""EXT1 — language-layer throughput: PRML and GeoMDQL parsing.

Infrastructure benchmark (not a paper artefact): the personalization
engine re-parses rules at registration and GeoMDQL queries per portal
request, so both parsers sit on the interactive path.
"""

from repro.data import ALL_PAPER_RULES, build_sales_schema
from repro.olap import parse_query
from repro.prml import parse_rules

ALL_RULES_TEXT = "\n".join(ALL_PAPER_RULES.values())

QUERIES = [
    "SELECT COUNT(*) FROM Sales",
    "SELECT SUM(UnitSales), AVG(StoreSales) FROM Sales BY Store.City, Time.Month",
    "SELECT SUM(StoreSales) FROM Sales BY Store.State "
    "WHERE Product.Family.name IN ('Food', 'Drink') "
    "AND Store.City.population >= 100000",
]


def test_ext1_prml_parse_throughput(benchmark):
    rules = benchmark(parse_rules, ALL_RULES_TEXT)
    assert len(rules) == len(ALL_PAPER_RULES)
    size = len(ALL_RULES_TEXT)
    print(f"\n[EXT1a] parsed {len(rules)} rules ({size} chars) per round")


def test_ext1_gmdql_parse_throughput(benchmark):
    schema = build_sales_schema()

    def parse_all():
        return [parse_query(q, schema) for q in QUERIES]

    queries = benchmark(parse_all)
    assert len(queries) == len(QUERIES)
    print(f"\n[EXT1b] parsed {len(QUERIES)} GeoMDQL queries per round")
