"""EXT-series benchmark runner with a JSON emitter (perf trajectory).

Runs the EXT3 portal request mixes, the EXT4 recommendation mixes and
the EXT5 shared-view-store mixes twice — once with every cache layer
disabled (``engine.enable_caches = False``, ``star.use_indexes =
False``, service ``query_cache_size = 0``, recommender memo off; the
uncached request path) and once with them enabled — and writes a JSON
artefact recording req/s (and fact rows scanned for the query mixes),
plus the speedups.  Before timing, it replays each mix in both modes and
asserts the response bodies are byte-identical: the caches must be
*transparent*.

The EXT4 mixes ride the multi-user demo workload
(:func:`repro.data.replay_demo_workload`): three journaled analysts,
recommendations served to the first one cold vs from the
generation-keyed memo.

The EXT5 mixes exercise the PR 4 shared materialized-view store:

* ``ext5a_shared_selection_fanout`` — N fresh sessions of one user, each
  materializing its view: the store must serve every session from one
  build (the recorded ``view_store.builds`` delta over the cached phase
  must be exactly 1 — the single shared build).
* ``ext5b_append_heavy`` — interleaved fact appends and view/query
  requests: incremental maintenance must *patch* the live views instead
  of rebuilding them.  This mix mutates the star, so its transparency
  gate and its two timed runs each get a **fresh portal** replaying an
  identical sequence (the generic gate would otherwise compare different
  data states).

The EXT6 mix exercises the PR 7 dictionary-encoded columnar engine:

* ``ext6_columnar_scan`` — a scan/rollup query mix on a fresh world
  whose fact table is 100x the scale tier's cardinality (10x under
  ``--smoke``), run through the vectorized batch executor and the
  row-loop reference executor.  Every query must answer bit-identically
  on both before timing (the identical-response gate applied to the
  storage engine itself).

The EXT7 mix exercises the PR 8 stateless serving tier:

* ``ext7_worker_scaling`` — a 4-tenant portal with 36 concurrent
  sessions against a per-worker live-session cap of 24, timed through a
  real pre-fork worker pool over a shared sqlite state backend at 1 and
  2 workers.  One worker LRU-thrashes (every request rehydrates a
  spilled session through the engine); two tenant-sharded workers keep
  every session live.  Before timing, the same logins and request sweep
  are replayed against a single-process in-memory portal and both pool
  topologies, and every response body must be identical.

The EXT8 mix exercises the PR 9 mutation log:

* ``ext8_mutation_churn`` — a steady request stream (views, a spatial
  DISTANCE query, a non-spatial rollup) over a 100x world while members
  and features mutate every step (and a fact row drawn from inside the
  personalized view every 8th), run in the
  typed-delta mode (views patched, roll-up caches extended in place,
  stamped query cache kept warm) and in full-invalidation mode
  (``view_store.incremental = False`` plus a blanket
  ``note_*_change`` per mutation).  Both modes must answer
  bit-identically before timing.

The EXT9 mix exercises the PR 10 synthetic workload engine:

* ``ext9_workload_replay`` — a deterministic seeded event stream
  (cohorted users, clustered login locations, the demo query/selection/
  layer/recommendation vocabulary, as-of reads) generated for a named
  scale tier (``--workload-tier``; smoke/small/medium/large) and
  replayed against the in-process façade *and* a 2-worker pre-fork pool
  over a shared sqlite backend.  Serial replay on both targets is the
  identical-response gate; closed-loop replay on the gate-warmed portals
  is the timing, bracketed by merged ``/api/v1/health`` snapshots so the
  JSON records window cache-hit rates, view patch/build splits,
  spill/rehydration counts and (via a ``REPRO_SANITIZE=1`` subprocess
  probe) lock contention stats.

``--scale`` picks the world size tier; the tier and the resulting fact
row count are recorded in the JSON artefact so BENCH_*.json entries
carry their scale and EXT6's/EXT8's cardinality multiplier is
reproducible.  Every record also carries an ``environment`` provenance
block (python version, cpu count, platform, git sha, generator seed).

Usage::

    python benchmarks/run_benchmarks.py --smoke --out BENCH_PR4.json
    python benchmarks/run_benchmarks.py --scale medium --rounds 2000

``--smoke`` keeps rounds small so CI can afford it on every push.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import (  # noqa: E402
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
    replay_demo_workload,
)
from repro.mdm import Aggregator  # noqa: E402
from repro.olap import (  # noqa: E402
    AggSpec,
    AttributeFilter,
    ComparisonOp,
    CubeQuery,
    LevelRef,
)
from repro.olap.query import execute, execute_reference  # noqa: E402
from repro.personalization import PersonalizationEngine  # noqa: E402
from repro.web import PortalApp  # noqa: E402
from repro.workload.harness import _world_scales  # noqa: E402
from repro.workload.metrics import environment_provenance  # noqa: E402

THRESHOLD = 3
QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"

# One source of truth for the world-size ladder: the workload harness
# (repro.workload.harness) defines it, every consumer — this runner, the
# ``repro workload`` CLI, the EXT9 tiers — reads the same table.
SCALES = {name: _world_scales()[name] for name in _world_scales()}


def build_portal(scale: str):
    world = generate_world(SCALES[scale])
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    profile = build_regional_manager_profile(build_motivating_user_model())
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(profile)
    # Seed the workload journals for the EXT4 recommendation mixes.
    demo_tokens = replay_demo_workload(app, world)
    return world, star, engine, profile, app, demo_tokens


def login(app, profile, world) -> str:
    location = world.stores[0].location
    response = app.handle(
        "POST",
        "/api/v1/login",
        {"user": profile.user_id, "location": [location.x, location.y]},
    )
    assert response.ok, response.body
    return response.json()["token"]


def set_caches(app, engine, star, enabled: bool) -> None:
    engine.enable_caches = enabled
    star.use_indexes = enabled
    # The disabled mode also routes queries through the row-loop
    # reference executor, so the transparency gates double as an
    # end-to-end identical-response check on the columnar engine.
    star.use_vectorized = enabled
    app.service.query_cache_size = 256 if enabled else 0
    app.service._query_cache.clear()
    app.service.recommender.enable_memo = enabled
    app.service.recommender._memo.clear()
    # enable_caches=False already routes sessions around the shared view
    # store; dropping its entries keeps the disabled mode honest (nothing
    # warm survives into the next enabled phase).
    if engine.view_store is not None:
        engine.view_store.invalidate()


def make_mixes(app, profile, world, token, reco_token):
    """name -> zero-arg callable returning the JSON bodies it produced."""
    query_body = {"q": QUERY, "limit": 10}

    def view():
        response = app.handle("GET", "/api/v1/view", token=token)
        assert response.ok, response.body
        return [response.json()]

    def query():
        response = app.handle("POST", "/api/v1/query", query_body, token=token)
        assert response.ok, response.body
        return [response.json()]

    def steady_state_mix():
        bodies = []
        for _ in range(8):
            bodies.extend(view())
        for _ in range(2):
            bodies.extend(query())
        return bodies

    def lifecycle():
        location = world.stores[0].location
        fresh = app.handle(
            "POST",
            "/api/v1/login",
            {"user": profile.user_id, "location": [location.x, location.y]},
        ).json()["token"]
        bodies = [app.handle("GET", "/api/v1/view", token=fresh).json()]
        assert app.handle("POST", "/api/v1/logout", token=fresh).ok
        return bodies

    def recommendations():
        response = app.handle(
            "GET", "/api/v1/recommendations/queries", token=reco_token
        )
        assert response.ok, response.body
        return [response.json()]

    def recommendation_mix():
        # Only GETs against /recommendations: these never journal, so the
        # steady state answers from the generation-keyed memo.
        bodies = []
        for kind in ("queries", "layers", "members"):
            response = app.handle(
                "GET", f"/api/v1/recommendations/{kind}", token=reco_token
            )
            assert response.ok, response.body
            bodies.append(response.json())
        return bodies

    def shared_selection_fanout():
        # N fresh sessions of one user, all landing on the same selection
        # content: with the view store on, the N materializations are one
        # shared build (bodies are the token-free view stats).
        location = world.stores[0].location
        tokens = []
        for _ in range(4):
            response = app.handle(
                "POST",
                "/api/v1/login",
                {"user": profile.user_id, "location": [location.x, location.y]},
            )
            assert response.ok, response.body
            tokens.append(response.json()["token"])
        bodies = []
        for fresh in tokens:
            response = app.handle("GET", "/api/v1/view", token=fresh)
            assert response.ok, response.body
            bodies.append(response.json())
        for fresh in tokens:
            assert app.handle("POST", "/api/v1/logout", token=fresh).ok
        return bodies

    # name -> (callable, HTTP requests issued per call)
    return {
        "ext3a_repeated_view": (view, 1),
        "ext3b_repeated_query": (query, 1),
        "ext3d_steady_state_mix": (steady_state_mix, 10),
        "ext3c_session_lifecycle": (lifecycle, 3),
        "ext4a_repeated_recommendations": (recommendations, 1),
        "ext4b_recommendation_mix": (recommendation_mix, 3),
        "ext5a_shared_selection_fanout": (shared_selection_fanout, 12),
    }


def time_mix(fn, rounds: int) -> float:
    fn()  # warm-up
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    elapsed = time.perf_counter() - started
    return rounds / elapsed


def rows_scanned(app, token) -> int:
    response = app.handle(
        "POST", "/api/v1/query", {"q": QUERY, "limit": 1}, token=token
    )
    return response.json()["fact_rows_scanned"]


def _ext5b_sequence(bundle, enabled: bool, steps: int) -> list:
    """Replay the append-heavy sequence on a fresh portal, returning the
    response bodies (the dedicated transparency gate compares them)."""
    world, star, engine, profile, app, _tokens = bundle
    set_caches(app, engine, star, enabled)
    token = login(app, profile, world)
    fact_table = star.fact_table()
    template = fact_table.row(0)
    coordinates = {d: template[d] for d in fact_table.fact.dimension_names}
    measures = {m: template[m] for m in fact_table.fact.measures}
    fact_name = fact_table.fact.name
    bodies = []
    for _ in range(steps):
        star.insert_fact(fact_name, coordinates, measures)
        view = app.handle("GET", "/api/v1/view", token=token)
        assert view.ok, view.body
        query = app.handle(
            "POST", "/api/v1/query", {"q": QUERY, "limit": 10}, token=token
        )
        assert query.ok, query.body
        bodies.append([view.json(), query.json()])
    return bodies


def bench_ext5b(scale: str, rounds: int) -> dict:
    """Time the append-heavy mix on a fresh portal per mode.

    The mix mutates the star (every round appends one fact row before a
    view and a query request), so both the gate replay and the timing run
    on independent, identically-seeded portals instead of the shared one
    the stateless mixes reuse.
    """
    steps = max(rounds // 20, 10)
    gate_steps = min(steps, 25)
    uncached_bodies = _ext5b_sequence(build_portal(scale), False, gate_steps)
    cached_bodies = _ext5b_sequence(build_portal(scale), True, gate_steps)
    assert uncached_bodies == cached_bodies, (
        "ext5b_append_heavy: cached response differs"
    )

    result: dict = {}
    for label, enabled in (("before", False), ("after", True)):
        bundle = build_portal(scale)
        engine = bundle[2]
        store_before = (
            engine.view_store.stats() if engine.view_store is not None else {}
        )
        started = time.perf_counter()
        _ext5b_sequence(bundle, enabled, steps)
        elapsed = time.perf_counter() - started
        # Two HTTP requests per step (the append is in-process storage).
        result[f"{label}_req_per_s"] = round(2 * steps / elapsed, 1)
        if enabled and engine.view_store is not None:
            after = engine.view_store.stats()
            result["view_store"] = {
                key: after[key] - store_before.get(key, 0)
                for key in ("builds", "patches", "invalidations")
            }
    result["speedup"] = round(
        result["after_req_per_s"] / result["before_req_per_s"], 2
    )
    result["rounds"] = steps
    return result


def bench_ext6(scale: str, multiplier: int) -> dict:
    """Vectorized columnar executor vs the row-loop reference.

    Builds a fresh world whose fact table holds ``multiplier`` times the
    scale tier's sales count, then runs a scan/rollup query mix through
    :func:`execute` (dictionary-encoded batch path) and
    :func:`execute_reference` (per-row ``rollup_member`` loop).  Before
    timing, every query must answer bit-identically on both executors —
    the identical-response protocol the cache benches enforce on HTTP
    bodies, applied here to the storage engine itself.
    """
    base = SCALES[scale]
    config = dataclasses.replace(base, sales=base.sales * multiplier)
    star = build_sales_star(generate_world(config))
    fact_rows = len(star.fact_table())

    cities = sorted(
        member.key
        for member in star.dimension_table("Store").members("City")
    )
    queries = [
        CubeQuery(
            "Sales",
            [AggSpec(Aggregator.SUM, "UnitSales")],
            group_by=[LevelRef("Product", "Family")],
        ),
        CubeQuery(
            "Sales",
            [
                AggSpec(Aggregator.SUM, "StoreSales"),
                AggSpec(Aggregator.AVG, "StoreSales"),
            ],
            group_by=[LevelRef("Store", "City")],
        ),
        CubeQuery(
            "Sales",
            [AggSpec(Aggregator.COUNT, "*")],
            group_by=[LevelRef("Store", "State")],
            where=[
                AttributeFilter(
                    LevelRef("Store", "City"),
                    "name",
                    ComparisonOp.IN,
                    tuple(cities[: max(len(cities) // 2, 1)]),
                )
            ],
        ),
    ]

    # Identical-response gate (also warms the translation tables so the
    # timed runs compare steady states).
    assert star.use_vectorized
    for query in queries:
        reference = execute_reference(star, query)
        vectorized = execute(star, query)
        assert vectorized.fact_rows_scanned == reference.fact_rows_scanned
        assert vectorized.fact_rows_matched == reference.fact_rows_matched
        assert set(vectorized.cells) == set(reference.cells), (
            "ext6_columnar_scan: cell coordinates differ"
        )
        for coordinate, cell in reference.cells.items():
            got = vectorized.cells[coordinate]
            # Bit-identical, not approximately equal.
            assert tuple(map(repr, got)) == tuple(map(repr, cell)), (
                f"ext6_columnar_scan: cell {coordinate} differs"
            )

    rounds = 2 if multiplier >= 100 else 5
    timings = {}
    for label, runner in (
        ("reference", execute_reference),
        ("vectorized", execute),
    ):
        started = time.perf_counter()
        for _ in range(rounds):
            for query in queries:
                runner(star, query)
        timings[label] = (time.perf_counter() - started) / rounds
    scanned = fact_rows * len(queries)
    return {
        "fact_multiplier": multiplier,
        "fact_rows": fact_rows,
        "queries": len(queries),
        "rounds": rounds,
        "reference_s": round(timings["reference"], 4),
        "vectorized_s": round(timings["vectorized"], 4),
        "reference_rows_per_s": round(scanned / timings["reference"]),
        "vectorized_rows_per_s": round(scanned / timings["vectorized"]),
        "speedup": round(timings["reference"] / timings["vectorized"], 2),
    }


# -- EXT7: multi-process worker scaling --------------------------------------------
#
# One process is the portal's session-capacity ceiling: the serving tier
# caps *live* sessions per process (spilled sessions are ended and must
# rehydrate through the engine on their next request — a login-grade
# cost).  EXT7 builds a 4-tenant portal with 36 concurrent sessions and
# a per-worker live cap of 24: a single worker LRU-thrashes (every
# request lands on a spilled session), while two tenant-sharded workers
# hold 18 live sessions each and stay warm.  Aggregate req/s over the
# EXT3-style steady-state mix (4 views : 1 query per session) is the
# measurement; the ISSUE 8 gate is >= 1.7x at 2 workers vs 1.
#
# Transparency gate before timing: the same logins and the same request
# sweep are replayed against a single-process in-memory portal and both
# pool topologies — every response body (tokens stripped from login
# bodies) must be identical, including the 1-worker mode where every
# gated request crosses a spill/rehydrate cycle.

EXT7_TENANTS = ("dm-0", "dm-1", "dm-2", "dm-3")  # ring-balanced 2/2
EXT7_SESSIONS_PER_TENANT = 9
EXT7_LIVE_CAP = 24
EXT7_CLIENT_THREADS = 4


def _ext7_build_app(scale: str, backend=None):
    """The EXT7 multi-tenant portal: 4 identical tenants over one world.

    With ``backend``, the worker-pool wiring — every store backend-backed
    under fixed namespaces, live sessions capped per process.  Without,
    the single-process in-memory reference; its stores are passed
    explicitly in-heap so the comparison never depends on REPRO_BACKEND
    in the surrounding environment.
    """
    from repro.lru import ThreadSafeLRU
    from repro.personalization import ViewStore
    from repro.reco.journal import WorkloadJournal
    from repro.service import (
        DatamartRegistry,
        InMemorySessionStore,
        PersonalizationService,
    )

    world = generate_world(SCALES[scale])
    registry = DatamartRegistry()
    for index, name in enumerate(EXT7_TENANTS):
        if backend is not None:
            from repro.cluster.stores import BackendViewStore

            view_store = BackendViewStore(
                backend, namespace=f"ext7-views-{name}"
            )
        else:
            view_store = ViewStore(128)
        engine = PersonalizationEngine(
            build_sales_star(world),
            build_motivating_user_model(),
            geo_source=WorldGeoSource(world),
            parameters={"threshold": THRESHOLD},
            view_store=view_store,
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        tenant = registry.register(
            name, engine, description="EXT7 tenant", default=index == 0
        )
        tenant.register_user(
            build_regional_manager_profile(build_motivating_user_model())
        )
    if backend is not None:
        from repro.cluster.stores import (
            BackendQueryCache,
            BackendSessionStore,
            BackendWorkloadJournal,
        )

        sessions = BackendSessionStore(
            backend,
            namespace="ext7-sessions",
            ttl=3600.0,
            max_live=EXT7_LIVE_CAP,
        )
        service = PersonalizationService(
            registry,
            session_store=sessions,
            query_cache=BackendQueryCache(backend, namespace="ext7-qcache"),
            journal=BackendWorkloadJournal(backend, namespace="ext7-journal"),
        )
        sessions.resolver = service._rehydrate_session
    else:
        service = PersonalizationService(
            registry,
            session_store=InMemorySessionStore(ttl=3600.0, max_sessions=64),
            query_cache=ThreadSafeLRU(256),
            journal=WorkloadJournal(),
        )
    return PortalApp(service=service)


def _ext7_login_all(send):
    """Open every EXT7 session; returns ``[(token, datamart)]`` plus the
    token-stripped login bodies (the transparency gate compares those)."""
    tokens = []
    bodies = []
    for name in EXT7_TENANTS:
        for _ in range(EXT7_SESSIONS_PER_TENANT):
            body = send(
                "POST",
                "/api/v1/login",
                {"user": "ana-garcia", "datamart": name},
                datamart=name,
            )
            tokens.append((body["token"], name))
            bodies.append({k: v for k, v in body.items() if k != "token"})
    return tokens, bodies


def _ext7_request(send, tokens, round_no, index):
    """One deterministic steady-state request (4 views : 1 query)."""
    token, _name = tokens[index]
    if (round_no + index) % 5 == 4:
        return send(
            "POST", "/api/v1/query", {"q": QUERY, "limit": 10}, token=token
        )
    return send("GET", "/api/v1/view", token=token)


def _ext7_sweep(send, tokens, rounds):
    """Serially replay the mix, collecting bodies for the gate."""
    return [
        _ext7_request(send, tokens, round_no, index)
        for round_no in range(rounds)
        for index in range(len(tokens))
    ]


def _ext7_timed(send, tokens, rounds):
    """Aggregate req/s over the mix, driven by concurrent client threads
    (each owns a disjoint session slice, so per-token requests stay
    serialized client-side like real users)."""
    import threading

    errors = []

    def drive(offset):
        try:
            for round_no in range(rounds):
                for index in range(offset, len(tokens), EXT7_CLIENT_THREADS):
                    _ext7_request(send, tokens, round_no, index)
        except Exception as exc:  # noqa: BLE001 - re-raised via errors
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(offset,))
        for offset in range(EXT7_CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return rounds * len(tokens) / elapsed


def _ext7_pool_mode(scale: str, workers: int, rounds: int, gate_rounds: int):
    """Drive one pool topology; returns req/s, gate bodies and stats."""
    import shutil
    import tempfile

    from repro.cluster.backend import SqliteBackend
    from repro.cluster.pool import ClusterClient, WorkerPool

    state_dir = tempfile.mkdtemp(prefix="repro-ext7-")
    backend = SqliteBackend(os.path.join(state_dir, "state.sqlite"))
    pool = WorkerPool(
        lambda worker_id: _ext7_build_app(scale, backend=backend),
        workers=workers,
    )
    try:
        pool.wait_ready(timeout=180.0)
        client = ClusterClient(pool)

        def send(method, path, body=None, token=None, datamart=None):
            status, data = client.request(
                method, path, body=body, token=token, datamart=datamart
            )
            assert status == 200, data
            return data

        tokens, login_bodies = _ext7_login_all(send)
        gate_bodies = _ext7_sweep(send, tokens, gate_rounds)
        req_per_s = _ext7_timed(send, tokens, rounds)
        spills = rehydrations = 0
        for health in client.shard_health():
            store = health["state_backend"]["sessions"]
            spills += store["spills"]
            rehydrations += store["rehydrations"]
        client.close()
        return {
            "req_per_s": req_per_s,
            "login_bodies": login_bodies,
            "gate_bodies": gate_bodies,
            "spills": spills,
            "rehydrations": rehydrations,
        }
    finally:
        pool.stop()
        backend.close()
        shutil.rmtree(state_dir, ignore_errors=True)


# -- EXT8: mutation churn — typed-delta propagation vs full invalidation -----
#
# The PR 9 tentpole turned every star change into a typed mutation whose
# delta the downstream tiers *patch* through: the shared view store
# extends live views in place, the star's roll-up translations and
# envelope grids survive additive member/feature churn, and the
# stamped query cache only drops entries whose per-kind generation
# stamps actually moved.  EXT8 measures that against the pre-delta
# semantics: ``view_store.incremental = False`` plus a blanket
# ``note_member_change``/``note_feature_change`` after every mutation —
# the one-size-fits-all invalidation every mutation used to be.
#
# The mix: a steady request stream per step — 4 views, one spatial
# DISTANCE query against the rule-added Airport layer (the paper's
# personalized spatial analysis, the expensive recompute), one
# non-spatial rollup — over a world whose fact table is 100x the scale
# tier's cardinality (10x under ``--smoke``), while every step adds a
# member and a feature and every 8th step appends a fact row drawn from
# *inside* the personalized view (so the answers provably move).  The
# per-kind stamps keep both queries warm through the member/feature
# churn (the Airport layer and the fact table are untouched); the
# blanket mode stales every stamp every step, so the spatial join
# recomputes each time — exactly the pre-delta behaviour.  Before
# timing, both modes replay an identical sequence on fresh portals and
# every response body must be identical — patching is only a win if it
# is indistinguishable from recomputing.

EXT8_VIEWS_PER_STEP = 4
EXT8_SPATIAL_QUERY = (
    "SELECT SUM(UnitSales) FROM Sales BY Store.City "
    "WHERE DISTANCE(Store, LAYER Airport) < 100 KM"
)


def _ext8_build(scale: str, multiplier: int):
    """A single-tenant portal over a ``multiplier``-scaled world."""
    base = SCALES[scale]
    config = dataclasses.replace(base, sales=base.sales * multiplier)
    world = generate_world(config)
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    profile = build_regional_manager_profile(build_motivating_user_model())
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(profile)
    return world, star, engine, profile, app


def _ext8_setup(bundle, full_invalidation: bool) -> dict:
    """Log in, pin a fact-row template inside the view, add the churn
    layer; in full-invalidation mode also flip the store to blanket
    invalidation and detach the history (the pre-delta tier kept none)."""
    from repro.geomd import GeometricType

    world, star, engine, profile, app = bundle
    if full_invalidation:
        engine.view_store.incremental = False
        if star.history is not None:
            star.history.detach()
    token = login(app, profile, world)
    session = engine.start_session(profile, location=world.stores[0].location)
    fact_table = star.fact_table()
    template = fact_table.row(session.view().fact_rows[0])
    star.schema.add_layer("Harbour", GeometricType.POINT)
    star.ensure_layer_table("Harbour")
    return {
        "app": app,
        "star": star,
        "engine": engine,
        "token": token,
        "fact": fact_table.fact.name,
        "coordinates": {
            d: template[d] for d in fact_table.fact.dimension_names
        },
        "measures": {m: template[m] for m in fact_table.fact.measures},
        "full": full_invalidation,
    }


def _ext8_churn(state: dict, steps: int) -> list:
    """Replay the churn mix once, returning the response bodies."""
    from repro.geometry import Point

    app, star, token = state["app"], state["star"], state["token"]
    query_bodies = (
        {"q": EXT8_SPATIAL_QUERY, "limit": 10},
        {"q": QUERY, "limit": 10},
    )
    bodies = []
    for step in range(steps):
        star.add_member("Product", "Family", f"Family-{step}")
        star.add_feature("Harbour", f"Pier {step}", Point(3.0, float(step)))
        if step % 8 == 7:
            star.insert_fact(
                state["fact"], state["coordinates"], state["measures"]
            )
        if state["full"]:
            # Pre-PR9 blanket semantics for the two mutated targets: a
            # member mutation dropped the dimension's roll-up indexes,
            # translations and grids; a feature mutation dropped the
            # layer grid; and the bumped per-kind generations stale
            # every query-cache stamp over the fact (a Sales answer
            # depends on every Sales dimension).
            star.note_member_change("Product", op="update")
            star.note_feature_change("Harbour")
        step_bodies = []
        for _ in range(EXT8_VIEWS_PER_STEP):
            response = app.handle("GET", "/api/v1/view", token=token)
            assert response.ok, response.body
            step_bodies.append(response.json())
        for query_body in query_bodies:
            response = app.handle(
                "POST", "/api/v1/query", query_body, token=token
            )
            assert response.ok, response.body
            step_bodies.append(response.json())
        bodies.append(step_bodies)
    return bodies


def bench_ext8(scale: str, rounds: int, multiplier: int) -> dict:
    """Mutation churn: typed-delta patching vs blanket invalidation."""
    steps = max(rounds // 50, 8)
    gate_steps = min(steps, 12)

    # Identical-response gate on fresh portals (the mix mutates the star,
    # so the two modes each replay the same sequence from the same seed).
    gate = {}
    for label, full in (("patched", False), ("full_invalidation", True)):
        state = _ext8_setup(_ext8_build(scale, multiplier), full)
        gate[label] = _ext8_churn(state, gate_steps)
    assert gate["patched"] == gate["full_invalidation"], (
        "ext8_mutation_churn: patched responses differ from full invalidation"
    )

    requests = steps * (EXT8_VIEWS_PER_STEP + 2)
    result: dict = {"fact_multiplier": multiplier, "rounds": steps}
    for label, full in (("full_invalidation", True), ("patched", False)):
        state = _ext8_setup(_ext8_build(scale, multiplier), full)
        engine, app = state["engine"], state["app"]
        result.setdefault("fact_rows", len(state["star"].fact_table()))
        store_before = engine.view_store.stats()
        hits_before = app.service.query_cache_hits
        started = time.perf_counter()
        _ext8_churn(state, steps)
        elapsed = time.perf_counter() - started
        store_after = engine.view_store.stats()
        result[f"{label}_req_per_s"] = round(requests / elapsed, 1)
        result[f"{label}_view_store"] = {
            key: store_after[key] - store_before.get(key, 0)
            for key in ("builds", "patches", "carries", "invalidations")
        }
        result[f"{label}_query_cache_hits"] = (
            app.service.query_cache_hits - hits_before
        )
    result["speedup"] = round(
        result["patched_req_per_s"] / result["full_invalidation_req_per_s"], 2
    )
    return result


def bench_ext7(scale: str, rounds: int) -> dict:
    """Worker-pool scaling on the steady-state mix (ISSUE 8 tentpole)."""
    gate_rounds = 2
    app = _ext7_build_app(scale)

    def send_in_process(method, path, body=None, token=None, datamart=None):
        response = app.handle(method, path, body, token=token)
        assert response.ok, response.body
        return response.json()

    reference_tokens, reference_logins = _ext7_login_all(send_in_process)
    reference_bodies = _ext7_sweep(send_in_process, reference_tokens, gate_rounds)
    reference_req_per_s = _ext7_timed(send_in_process, reference_tokens, rounds)

    modes = {}
    for workers in (1, 2):
        mode = _ext7_pool_mode(scale, workers, rounds, gate_rounds)
        # Identical-response gate: the pooled portal (including the
        # 1-worker topology, where every gated request crosses a
        # spill/rehydrate cycle) must be indistinguishable from the
        # single-process in-memory portal.
        assert mode["login_bodies"] == reference_logins, (
            f"ext7: {workers}-worker login responses differ from "
            f"single-process in-memory"
        )
        assert mode["gate_bodies"] == reference_bodies, (
            f"ext7: {workers}-worker responses differ from "
            f"single-process in-memory"
        )
        modes[workers] = mode

    total_sessions = len(EXT7_TENANTS) * EXT7_SESSIONS_PER_TENANT
    return {
        "tenants": len(EXT7_TENANTS),
        "sessions": total_sessions,
        "per_worker_live_cap": EXT7_LIVE_CAP,
        "rounds": rounds,
        "single_process_memory_req_per_s": round(reference_req_per_s, 1),
        "workers_1_req_per_s": round(modes[1]["req_per_s"], 1),
        "workers_2_req_per_s": round(modes[2]["req_per_s"], 1),
        "workers_1_rehydrations": modes[1]["rehydrations"],
        "workers_2_rehydrations": modes[2]["rehydrations"],
        "speedup_2w_vs_1w": round(
            modes[2]["req_per_s"] / modes[1]["req_per_s"], 2
        ),
    }


# -- EXT9: synthetic workload replay at scale tiers --------------------------------
#
# The PR 10 tentpole: a deterministic, seedable event stream (cohorted
# synthetic users with clustered login locations, the journal-vocabulary
# query mix, selection reports, layer and recommendation fetches, as-of
# reads) replayed against the two serving topologies items 1-2 were
# built for — the in-process façade and a real 2-worker pre-fork pool
# over a shared sqlite backend.  Before timing, the identical-response
# gate: the same stream replayed *serially* on both targets must produce
# byte-identical bodies (login tokens stripped).  Timing is closed-loop
# (the tier's actor count) on the gate-warmed portals; the collector
# brackets each timed run with merged health snapshots, so the JSON
# carries window cache-hit rates, view patch/build splits and backend
# spill/rehydration counts.  Lock contention/hold stats come from a
# subprocess probe (the sanitizer must instrument locks from process
# start), replaying the same stream closed-loop under REPRO_SANITIZE=1.


def _ext9_contention_probe(tier_obj, stream, actors: int) -> dict | None:
    """Replay the stream in a REPRO_SANITIZE=1 subprocess; return the
    lock-contention summary from its health window (or an error stub —
    the probe is diagnostic, it never fails the benchmark)."""
    import shutil
    import subprocess
    import tempfile

    probe_dir = tempfile.mkdtemp(prefix="repro-ext9-probe-")
    try:
        stream_path = os.path.join(probe_dir, "stream.jsonl")
        Path(stream_path).write_text(stream.to_jsonl())
        env = dict(os.environ, REPRO_SANITIZE="1")
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "workload",
                "replay",
                stream_path,
                "--world-scale",
                tier_obj.world_scale,
                "--mode",
                "closed",
                "--actors",
                str(actors),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=3600,
        )
        if proc.returncode != 0:
            return {"error": proc.stderr.strip()[-500:]}
        return json.loads(proc.stdout)["health_window"]["locks"]
    finally:
        shutil.rmtree(probe_dir, ignore_errors=True)


def bench_ext9(workload_tier: str) -> dict:
    import shutil
    import tempfile

    from repro.cluster.backend import SqliteBackend
    from repro.cluster.pool import WorkerPool
    from repro.workload import (
        ClusterTarget,
        InProcessTarget,
        ReplayDriver,
        build_tier_world,
        build_workload_portal,
        generator_for_tier,
        health_window,
        merge_health,
        tier,
    )

    tier_obj = tier(workload_tier)
    world = build_tier_world(tier_obj)
    stream = generator_for_tier(tier_obj, world).stream()
    active = stream.active_users()
    fact_rows = world.config.sales
    actors = min(8, tier_obj.config.concurrency)
    description = stream.describe(fact_rows=fact_rows)

    # In-process façade: serial gate replay, then closed-loop timing.
    in_target = InProcessTarget(build_workload_portal(world, active))
    in_driver = ReplayDriver(in_target)
    in_driver.resolve_as_of()
    in_gate, gate_bodies = in_driver.replay_serial(stream, collect_bodies=True)
    assert in_gate.errors == 0, f"EXT9 in-process gate: {in_gate.error_statuses}"
    in_before = merge_health(in_target.health())
    in_timed = in_driver.replay_closed(stream, actors=actors)
    in_window = health_window(in_before, merge_health(in_target.health()))

    # 2-worker pre-fork pool over a shared sqlite backend: same gate
    # stream serially — every body must match the in-process replay —
    # then the same closed-loop timing.
    state_dir = tempfile.mkdtemp(prefix="repro-ext9-")
    backend = SqliteBackend(os.path.join(state_dir, "state.sqlite"))
    pool = WorkerPool(
        lambda worker_id: build_workload_portal(world, active, backend=backend),
        workers=2,
    )
    try:
        pool.wait_ready(timeout=300.0)
        cluster_target = ClusterTarget(pool)
        cluster_driver = ReplayDriver(cluster_target)
        cluster_driver.resolve_as_of()
        cluster_gate, cluster_bodies = cluster_driver.replay_serial(
            stream, collect_bodies=True
        )
        assert cluster_gate.errors == 0, (
            f"EXT9 cluster gate: {cluster_gate.error_statuses}"
        )
        assert cluster_bodies == gate_bodies, (
            "EXT9: cluster responses differ from in-process responses"
        )
        cluster_before = merge_health(cluster_target.health())
        cluster_timed = cluster_driver.replay_closed(stream, actors=actors)
        cluster_window = health_window(
            cluster_before, merge_health(cluster_target.health())
        )
        cluster_target.close()
    finally:
        pool.stop()
        backend.close()
        shutil.rmtree(state_dir, ignore_errors=True)

    contention = _ext9_contention_probe(tier_obj, stream, actors)
    return {
        "tier": tier_obj.name,
        "seed": stream.seed,
        "world_scale": tier_obj.world_scale,
        "fact_rows": fact_rows,
        "population_users": description["population_users"],
        "active_users": description["active_users"],
        "sessions": description["sessions"],
        "events": description["events"],
        "events_by_kind": description["events_by_kind"],
        "as_of_reads": description["as_of_reads"],
        "facts_equivalent": description["facts_equivalent"],
        "actors": actors,
        "gate_requests": in_gate.requests,
        "in_process": {
            "closed": in_timed.to_dict(),
            "health_window": in_window,
        },
        "cluster_2w": {
            "closed": cluster_timed.to_dict(),
            "health_window": cluster_window,
        },
        "contention": contention,
    }


def run(
    scale: str,
    rounds: int,
    out_path: str | None,
    ext6_multiplier: int = 100,
    ext7_rounds: int = 40,
    workload_tier: str = "smoke",
) -> dict:
    world, star, engine, profile, app, demo_tokens = build_portal(scale)
    token = login(app, profile, world)
    mixes = make_mixes(
        app, profile, world, token, reco_token=demo_tokens["ana-garcia"]
    )
    per_mix_rounds = {
        "ext3a_repeated_view": rounds,
        "ext3b_repeated_query": max(rounds // 4, 10),
        "ext3d_steady_state_mix": max(rounds // 10, 10),
        "ext3c_session_lifecycle": max(rounds // 20, 5),
        "ext4a_repeated_recommendations": max(rounds // 4, 10),
        "ext4b_recommendation_mix": max(rounds // 10, 10),
        "ext5a_shared_selection_fanout": max(rounds // 20, 5),
    }

    # Transparency gate: every mix must answer identically in both modes.
    # (Lifecycle bodies contain fresh tokens, so compare the token-free
    # view body it returns.)
    for name, (fn, _weight) in mixes.items():
        set_caches(app, engine, star, False)
        uncached = fn()
        set_caches(app, engine, star, True)
        cached = fn()
        assert uncached == cached, f"{name}: cached response differs"

    results: dict = {
        "series": "EXT3+EXT4+EXT5+EXT6+EXT7+EXT8+EXT9",
        "scale": scale,
        "workload_tier": workload_tier,
        "fact_rows": len(star.fact_table()),
        "rounds": per_mix_rounds,
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Whether the lock-order sanitizer instrumented this run: the
        # wrappers are opt-in, so timings here are only comparable to
        # committed records carrying the same flag.
        "sanitize": os.environ.get("REPRO_SANITIZE") == "1",
        # Host/interpreter/git provenance: what makes this record
        # comparable (or not) to the BENCH_*.json trajectory.
        "environment": environment_provenance(),
        "mixes": {},
    }
    for name, (fn, weight) in mixes.items():
        mix_rounds = per_mix_rounds[name]
        # Scan counts only make sense for mixes that issue GeoMDQL queries.
        is_query_mix = name in ("ext3b_repeated_query", "ext3d_steady_state_mix")
        set_caches(app, engine, star, False)
        before = time_mix(fn, mix_rounds) * weight
        scanned_before = rows_scanned(app, token) if is_query_mix else None
        set_caches(app, engine, star, True)
        store_before = (
            engine.view_store.stats() if engine.view_store is not None else None
        )
        after = time_mix(fn, mix_rounds) * weight
        scanned_after = rows_scanned(app, token) if is_query_mix else None
        results["mixes"][name] = {
            "before_req_per_s": round(before, 1),
            "after_req_per_s": round(after, 1),
            "speedup": round(after / before, 2),
        }
        if is_query_mix:
            results["mixes"][name]["fact_rows_scanned_before"] = scanned_before
            results["mixes"][name]["fact_rows_scanned_after"] = scanned_after
        if name == "ext5a_shared_selection_fanout" and store_before is not None:
            # The acceptance claim: (1 + rounds) fan-outs of 4 sessions
            # each materialized their view from ONE shared build.
            store_after = engine.view_store.stats()
            results["mixes"][name]["view_store"] = {
                key: store_after[key] - store_before[key]
                for key in ("builds", "hits", "patches")
            }
        scanned = (
            f", rows scanned {scanned_before} -> {scanned_after}"
            if is_query_mix
            else ""
        )
        print(
            f"[{name}] {before:,.0f} -> {after:,.0f} req/s "
            f"({after / before:.1f}x){scanned}"
        )

    results["mixes"]["ext5b_append_heavy"] = ext5b = bench_ext5b(scale, rounds)
    results["rounds"]["ext5b_append_heavy"] = ext5b.pop("rounds")
    print(
        f"[ext5b_append_heavy] {ext5b['before_req_per_s']:,.0f} -> "
        f"{ext5b['after_req_per_s']:,.0f} req/s ({ext5b['speedup']:.1f}x), "
        f"view store {ext5b['view_store']}"
    )

    results["mixes"]["ext6_columnar_scan"] = ext6 = bench_ext6(
        scale, ext6_multiplier
    )
    results["rounds"]["ext6_columnar_scan"] = ext6.pop("rounds")
    print(
        f"[ext6_columnar_scan] {ext6['fact_rows']:,} rows "
        f"(x{ext6['fact_multiplier']}): reference {ext6['reference_s']}s -> "
        f"vectorized {ext6['vectorized_s']}s ({ext6['speedup']:.1f}x)"
    )

    results["mixes"]["ext7_worker_scaling"] = ext7 = bench_ext7(
        scale, ext7_rounds
    )
    results["rounds"]["ext7_worker_scaling"] = ext7.pop("rounds")
    print(
        f"[ext7_worker_scaling] {ext7['sessions']} sessions over live cap "
        f"{ext7['per_worker_live_cap']}: 1 worker "
        f"{ext7['workers_1_req_per_s']:,.0f} -> 2 workers "
        f"{ext7['workers_2_req_per_s']:,.0f} req/s "
        f"({ext7['speedup_2w_vs_1w']:.1f}x, rehydrations "
        f"{ext7['workers_1_rehydrations']} -> "
        f"{ext7['workers_2_rehydrations']})"
    )

    results["mixes"]["ext8_mutation_churn"] = ext8 = bench_ext8(
        scale, rounds, ext6_multiplier
    )
    results["rounds"]["ext8_mutation_churn"] = ext8.pop("rounds")
    print(
        f"[ext8_mutation_churn] {ext8['fact_rows']:,} rows "
        f"(x{ext8['fact_multiplier']}): full invalidation "
        f"{ext8['full_invalidation_req_per_s']:,.0f} -> patched "
        f"{ext8['patched_req_per_s']:,.0f} req/s "
        f"({ext8['speedup']:.1f}x), patched view store "
        f"{ext8['patched_view_store']}"
    )

    results["mixes"]["ext9_workload_replay"] = ext9 = bench_ext9(workload_tier)
    results["rounds"]["ext9_workload_replay"] = ext9["events"]
    results["environment"]["generator_seed"] = ext9["seed"]
    print(
        f"[ext9_workload_replay] tier {ext9['tier']}: "
        f"{ext9['population_users']:,} users -> {ext9['sessions']} sessions, "
        f"{ext9['events']} events ({ext9['facts_equivalent']:,} "
        f"facts-equivalent): in-process "
        f"{ext9['in_process']['closed']['req_per_s']:,.0f} req/s "
        f"(p95 {ext9['in_process']['closed']['latency']['p95_ms']}ms), "
        f"2-worker pool "
        f"{ext9['cluster_2w']['closed']['req_per_s']:,.0f} req/s "
        f"(p95 {ext9['cluster_2w']['closed']['latency']['p95_ms']}ms)"
    )

    if out_path:
        Path(out_path).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out_path}")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--rounds", type=int, default=2000)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny round counts for CI"
    )
    parser.add_argument("--out", default=None, help="JSON artefact path")
    parser.add_argument(
        "--workload-tier",
        default=None,
        help="EXT9 scale tier (smoke/small/medium/large; default: smoke "
        "under --smoke, else medium)",
    )
    args = parser.parse_args()
    rounds = 100 if args.smoke else args.rounds
    # Smoke runs keep EXT6 at small cardinality so CI can afford it; the
    # 100x claim is only asserted on full runs.
    multiplier = 10 if args.smoke else 100
    ext7_rounds = 6 if args.smoke else max(args.rounds // 50, 20)
    workload_tier = args.workload_tier or ("smoke" if args.smoke else "medium")
    results = run(
        args.scale,
        rounds,
        args.out,
        ext6_multiplier=multiplier,
        ext7_rounds=ext7_rounds,
        workload_tier=workload_tier,
    )
    # The PR 2 acceptance bar: repeated views must be >= 5x faster.
    ext3a = results["mixes"]["ext3a_repeated_view"]
    if ext3a["speedup"] < 5.0:
        print(f"FAIL: EXT3a speedup {ext3a['speedup']}x < 5x", file=sys.stderr)
        return 1
    # The PR 3 bar: memoized recommendations must beat cold recomputes.
    ext4a = results["mixes"]["ext4a_repeated_recommendations"]
    if ext4a["speedup"] < 2.0:
        print(f"FAIL: EXT4a speedup {ext4a['speedup']}x < 2x", file=sys.stderr)
        return 1
    # The PR 4 bars are structural, not timing-based (robust in CI smoke):
    # (a) the shared-selection fan-out materialized every session's view
    # from exactly one build; (b) the append-heavy mix patched views
    # instead of rebuilding them.
    ext5a_store = results["mixes"]["ext5a_shared_selection_fanout"]["view_store"]
    if ext5a_store["builds"] != 1:
        print(
            f"FAIL: EXT5a fan-out built {ext5a_store['builds']} views, "
            f"expected 1 shared build",
            file=sys.stderr,
        )
        return 1
    ext5b_store = results["mixes"]["ext5b_append_heavy"]["view_store"]
    if ext5b_store["builds"] > 1 or ext5b_store["patches"] < 1:
        print(
            f"FAIL: EXT5b append-heavy mix did not avoid rebuilds: "
            f"{ext5b_store}",
            file=sys.stderr,
        )
        return 1
    # The PR 7 bar: at 100x cardinality the vectorized executor must be
    # >= 5x the row-loop reference (timing gates are skipped in smoke
    # mode, where the multiplier is too small to be meaningful).
    ext6 = results["mixes"]["ext6_columnar_scan"]
    if ext6["fact_multiplier"] >= 100 and ext6["speedup"] < 5.0:
        print(f"FAIL: EXT6 speedup {ext6['speedup']}x < 5x", file=sys.stderr)
        return 1
    # The PR 8 bar: once live sessions exceed the per-worker cap, two
    # shard-routed workers must deliver >= 1.7x the aggregate
    # steady-state req/s of one (the identical-response gate inside
    # bench_ext7 always runs; the timing gate is skipped in smoke mode,
    # where the round count is too small to be meaningful).
    ext7 = results["mixes"]["ext7_worker_scaling"]
    if not args.smoke and ext7["speedup_2w_vs_1w"] < 1.7:
        print(
            f"FAIL: EXT7 speedup {ext7['speedup_2w_vs_1w']}x < 1.7x",
            file=sys.stderr,
        )
        return 1
    # The PR 9 bars: (a) structural — under member/feature/fact churn the
    # typed-delta mode must serve every view from patches/carries with
    # zero rebuilds and zero invalidations (the identical-response gate
    # inside bench_ext8 always runs); (b) timing — patching must be
    # >= 3x blanket invalidation at 100x cardinality (skipped in smoke
    # mode, where the multiplier is too small to be meaningful).
    ext8 = results["mixes"]["ext8_mutation_churn"]
    ext8_store = ext8["patched_view_store"]
    if (
        ext8_store["builds"] > 0
        or ext8_store["invalidations"] > 0
        or ext8_store["patches"] < 1
    ):
        print(
            f"FAIL: EXT8 churn did not avoid rebuilds: {ext8_store}",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and ext8["speedup"] < 3.0:
        print(f"FAIL: EXT8 speedup {ext8['speedup']}x < 3x", file=sys.stderr)
        return 1
    # The PR 10 bars are structural (the identical-response gate between
    # the in-process façade and the 2-worker pool already ran inside
    # bench_ext9): every timed replay must finish error-free on both
    # targets, at every tier.
    ext9 = results["mixes"]["ext9_workload_replay"]
    for target_name in ("in_process", "cluster_2w"):
        errors = ext9[target_name]["closed"]["errors"]
        if errors:
            print(
                f"FAIL: EXT9 {target_name} replay had {errors} errors: "
                f"{ext9[target_name]['closed']['error_statuses']}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
