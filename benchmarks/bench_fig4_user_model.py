"""FIG4 — regenerate the motivating example's spatial-aware user model."""

from repro.data import build_motivating_user_model
from repro.geometry import Point
from repro.sus import UserProfile
from repro.uml import to_plantuml


def _build_and_exercise():
    schema = build_motivating_user_model()
    text = to_plantuml(schema.to_uml())
    profile = UserProfile(schema, "bench-user")
    profile.set("DecisionMaker.name", "Ana Garcia")
    profile.set("DecisionMaker.dm2role.name", "RegionalSalesManager")
    profile.open_session(Point(10.0, 20.0))
    for _ in range(10):
        profile.increment_degree("AirportCity")
    return schema, text, profile


def test_fig4_user_model(benchmark):
    schema, text, profile = benchmark(_build_and_exercise)
    assert "class DecisionMaker <<User>>" in text
    assert "class AirportCity <<SpatialSelection>>" in text
    assert profile.degree("AirportCity") == 10
    assert profile.get("DecisionMaker.dm2session.s2location.geometry") == Point(
        10.0, 20.0
    )
    print("\n[FIG4] user model regenerated:")
    print(f"  classes={sorted(schema.classes)}")
    print(f"  roles={sorted(r for (_s, r) in schema.associations)}")
