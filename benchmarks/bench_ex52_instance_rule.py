"""EX52 — execute the 5kmStores instance rule (Example 5.2).

Times the distance-filtered selection over the already-spatialized
warehouse and prints the selection-size series across radii — the
"shape" the paper implies: a personalized instance much smaller than the
full SDW.
"""

from repro.data import build_regional_manager_profile
from repro.prml import Evaluator, SelectionSet, parse_rule

RADIUS_SWEEP = ("1km", "5km", "20km", "100km")

RULE_TEMPLATE = """\
Rule:kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry,
        SUS.DecisionMaker.dm2session.s2location.geometry) < {radius}) then
      SelectInstance(s)
    endIf
  endForeach
endWhen
"""


def test_ex52_instance_rule(benchmark, engine, world, user_schema):
    # Spatialize once via the schema rules (Example 5.1 must run first).
    profile = build_regional_manager_profile(user_schema)
    location = world.cities[0].location
    session = engine.start_session(profile, location=location)
    context = session.context
    rule_5km = parse_rule(RULE_TEMPLATE.format(radius="5km"))

    def run_rule():
        context.selection = SelectionSet()
        return Evaluator(context).execute(rule_5km)

    outcome = benchmark(run_rule)
    expected = {
        s.name
        for s in world.stores
        if s.location.distance_to(location) < 5_000.0
    }
    assert context.selection.members[("Store", "Store")] == expected

    print("\n[EX52] 5kmStores selection sweep (radius -> stores kept / total):")
    for radius in RADIUS_SWEEP:
        context.selection = SelectionSet()
        Evaluator(context).execute(parse_rule(RULE_TEMPLATE.format(radius=radius)))
        kept = len(context.selection.members.get(("Store", "Store"), ()))
        print(f"  {radius:>6}: {kept:4d} / {len(world.stores)}")
    benchmark.extra_info["stores_kept_5km"] = outcome.selected_instances
    session.end()
