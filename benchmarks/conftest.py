"""Shared benchmark fixtures.

Benchmarks regenerate each paper figure/example (pytest-benchmark timings)
and print the series EXPERIMENTS.md records.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine

THRESHOLD = 3

#: Warehouse scales used by the sweep benchmarks (QC1/ABL*).
SCALES = {
    "small": WorldConfig(seed=7, sales=2_000),
    "medium": WorldConfig(
        seed=7,
        cities_per_state=8,
        stores_per_city=5,
        customers_per_city=20,
        sales=10_000,
    ),
    "large": WorldConfig(
        seed=7,
        states_x=4,
        states_y=3,
        cities_per_state=8,
        stores_per_city=6,
        customers_per_city=25,
        train_lines=8,
        sales=40_000,
    ),
}


@pytest.fixture(scope="session")
def world():
    return generate_world(SCALES["small"])


@pytest.fixture()
def star(world):
    return build_sales_star(world)


@pytest.fixture()
def user_schema():
    return build_motivating_user_model()


@pytest.fixture()
def profile(user_schema):
    return build_regional_manager_profile(user_schema)


@pytest.fixture()
def engine(world, star, user_schema):
    eng = PersonalizationEngine(
        star,
        user_schema,
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    eng.add_rules(ALL_PAPER_RULES.values())
    return eng


def build_engine_at_scale(scale_name):
    """Standalone engine builder for parameter sweeps."""
    config = SCALES[scale_name]
    world = generate_world(config)
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    return world, star, engine
