"""FIG1 — the end-to-end personalization process (login to view)."""

from repro.data import build_regional_manager_profile


def test_fig1_process(benchmark, engine, world, user_schema):
    location = world.stores[0].location

    def full_process():
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile, location=location)
        view = session.view()
        session.end()
        return view

    view = benchmark(full_process)
    stats = view.stats()
    assert stats["layers"] >= 1
    assert stats["spatial_levels"] >= 1
    assert 0 < stats["fact_rows_kept"] < stats["fact_rows_total"]
    benchmark.extra_info.update(stats)
    print("\n[FIG1] end-to-end process (MD -> GeoMD -> personalized instance):")
    print(f"  {stats}")
