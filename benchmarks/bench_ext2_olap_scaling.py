"""EXT2 — OLAP engine scaling: grouped aggregation across fact counts.

Infrastructure benchmark: the cube engine should scale linearly in fact
rows for a fixed grouping; this prints the measured series so regressions
in the scan loop are visible.
"""

import time

from conftest import SCALES, build_engine_at_scale

from repro.mdm import Aggregator
from repro.olap import AggSpec, Cube


def test_ext2_olap_scaling(benchmark):
    world, star, _engine = build_engine_at_scale("small")
    cube = (
        Cube(star)
        .measures(AggSpec(Aggregator.SUM, "StoreSales"), AggSpec(Aggregator.COUNT, "*"))
        .by("Store.City", "Time.Month")
    )
    result = benchmark(lambda: cube.result())
    assert result.fact_rows_scanned == len(star.fact_table())

    print("\n[EXT2] grouped-aggregation scaling (facts -> ms, cells):")
    rows = []
    for scale in SCALES:
        _world, star, _engine = build_engine_at_scale(scale)
        scaled_cube = (
            Cube(star)
            .measures(AggSpec(Aggregator.SUM, "StoreSales"))
            .by("Store.City", "Time.Month")
        )
        start = time.perf_counter()
        scaled_result = scaled_cube.result()
        elapsed = (time.perf_counter() - start) * 1000
        rows.append((len(star.fact_table()), elapsed, len(scaled_result)))
        print(
            f"  {len(star.fact_table()):>6} facts: {elapsed:8.2f} ms, "
            f"{len(scaled_result):>5} cells"
        )
    # Rough linearity: 20x rows should not cost more than ~80x time.
    smallest, largest = rows[0], rows[-1]
    row_ratio = largest[0] / smallest[0]
    time_ratio = largest[1] / max(smallest[1], 1e-9)
    assert time_ratio < row_ratio * 4
