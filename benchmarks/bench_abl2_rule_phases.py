"""ABL2 — two-phase personalization vs per-query re-evaluation.

The paper's process evaluates rules once per session and hands BI tools a
pre-computed selection (Fig. 1).  The naive alternative re-evaluates the
spatial condition inside every query.  This ablation measures both for a
batch of queries; expected shape: the two-phase design amortizes the
spatial work, so its advantage grows with the number of queries.
"""

import time

from repro.data import build_regional_manager_profile
from repro.mdm import Aggregator
from repro.olap import (
    AggSpec,
    ComparisonOp,
    CubeQuery,
    LayerRef,
    LevelRef,
    SpatialFilter,
    SpatialRelation,
    execute,
)

QUERY_BATCH = 20


def test_abl2_rule_phases(benchmark, engine, star, world, user_schema):
    profile = build_regional_manager_profile(user_schema)
    session = engine.start_session(profile, world.cities[0].location)
    view = session.view()

    group_specs = [
        LevelRef("Product", "Family"),
        LevelRef("Time", "Month"),
        LevelRef("Store", "State"),
        LevelRef("Customer", "City"),
    ]

    def two_phase_batch():
        results = []
        for i in range(QUERY_BATCH):
            query = CubeQuery(
                "Sales",
                [AggSpec(Aggregator.SUM, "StoreSales")],
                group_by=[group_specs[i % len(group_specs)]],
            )
            results.append(execute(star, query, view.fact_rows))
        return results

    results = benchmark(two_phase_batch)
    assert len(results) == QUERY_BATCH

    # Naive: every query re-applies the spatial condition itself (the
    # airports-distance filter is a stand-in of equivalent selectivity).
    def naive_batch():
        results = []
        for i in range(QUERY_BATCH):
            query = CubeQuery(
                "Sales",
                [AggSpec(Aggregator.SUM, "StoreSales")],
                group_by=[group_specs[i % len(group_specs)]],
                where=[
                    SpatialFilter(
                        LevelRef("Store"),
                        SpatialRelation.DISTANCE,
                        LayerRef("Airport"),
                        ComparisonOp.LT,
                        20_000.0,
                    )
                ],
            )
            results.append(execute(star, query))
        return results

    start = time.perf_counter()
    naive = naive_batch()
    t_naive = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    two_phase_batch()
    t_two_phase = (time.perf_counter() - start) * 1000

    assert len(naive) == QUERY_BATCH
    print(
        f"\n[ABL2] {QUERY_BATCH}-query batch: two-phase={t_two_phase:.1f}ms, "
        f"naive-per-query={t_naive:.1f}ms "
        f"({t_naive / max(t_two_phase, 1e-9):.1f}x)"
    )
    session.end()
