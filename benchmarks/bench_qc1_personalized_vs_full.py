"""QC1 — "avoid exploring a large and complex SDW" (Sections 1 & 6).

The paper's core qualitative claim: personalization means the decision
maker's analyses run over a much smaller instance.  This bench sweeps
warehouse scale and compares a grouped OLAP query over (a) the raw fact
table vs (b) the personalized fact-row selection, reporting sizes and
timing ratio.  Expected shape: the personalized query touches a small
fraction of the rows and gets proportionally faster as scale grows.
"""

import time

from conftest import SCALES, build_engine_at_scale

from repro.data import build_regional_manager_profile
from repro.mdm import Aggregator
from repro.olap import AggSpec


def _report_query(view):
    return (
        view.cube()
        .measures(AggSpec(Aggregator.SUM, "StoreSales"))
        .by("Product.Family")
        .result()
    )


def test_qc1_personalized_vs_full(benchmark):
    world, star, engine = build_engine_at_scale("small")
    profile = build_regional_manager_profile()
    session = engine.start_session(profile, location=world.cities[0].location)
    view = session.view()

    result = benchmark(_report_query, view)
    assert result.fact_rows_scanned == len(view.fact_rows)

    print("\n[QC1] personalized vs full scan across warehouse scales:")
    print("  scale   facts    kept   kept%   t_full(ms)  t_pers(ms)  speedup")
    for scale in SCALES:
        world, star, engine = build_engine_at_scale(scale)
        profile = build_regional_manager_profile()
        session = engine.start_session(profile, world.cities[0].location)
        view = session.view()
        full_cube = view.cube().with_selection(None)
        pers_cube = view.cube()

        start = time.perf_counter()
        full_cube.measures(AggSpec(Aggregator.SUM, "StoreSales")).by(
            "Product.Family"
        ).result()
        t_full = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        pers_cube.measures(AggSpec(Aggregator.SUM, "StoreSales")).by(
            "Product.Family"
        ).result()
        t_pers = (time.perf_counter() - start) * 1000

        stats = view.stats()
        total, kept = stats["fact_rows_total"], stats["fact_rows_kept"]
        assert 0 < kept < total  # personalization always shrinks the instance
        print(
            f"  {scale:<7} {total:>6}  {kept:>6}  {kept / total:6.1%}"
            f"  {t_full:10.2f}  {t_pers:10.2f}  {t_full / max(t_pers, 1e-9):6.1f}x"
        )
        session.end()
