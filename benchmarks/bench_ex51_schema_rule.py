"""EX51 — execute the addSpatiality schema rule (Example 5.1)."""

import pytest

from repro.data import (
    ADD_SPATIALITY,
    WorldGeoSource,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.prml import Evaluator, RuntimeContext, parse_rule


def test_ex51_schema_rule(benchmark, world, user_schema):
    rule = parse_rule(ADD_SPATIALITY)
    source = WorldGeoSource(world)

    def run_schema_rule():
        star = build_sales_star(world)
        profile = build_regional_manager_profile(user_schema)
        context = RuntimeContext(
            user_profile=profile,
            md_schema=star.schema,
            geomd_schema=star.schema,
            star=star,
            geo_source=source,
        )
        return Evaluator(context).execute(rule), star

    (outcome, star) = benchmark(run_schema_rule)
    assert outcome.layers_added == ["Airport"]
    assert outcome.levels_spatialized == ["Store.Store"]
    assert len(star.layer_table("Airport")) == len(world.airports)
    store = star.dimension_table("Store").members("Store")[0]
    assert store.geometry is not None
    print("\n[EX51] addSpatiality executed:")
    print(
        f"  layers added={outcome.layers_added}, "
        f"levels spatialized={outcome.levels_spatialized}, "
        f"airports loaded={len(star.layer_table('Airport'))}, "
        f"stores backfilled={star.dimension_table('Store').size('Store')}"
    )
