"""FIG6 — regenerate the GeoMD model (Fig. 2 + schema rules -> Fig. 6)."""

from repro.data import build_sales_schema
from repro.geomd import GeoMDSchema, GeometricType, geomd_to_uml
from repro.mdm import diff_schemas
from repro.uml import to_plantuml


def _apply_schema_rules():
    geo = GeoMDSchema.from_md(build_sales_schema())
    geo.add_layer("Airport", GeometricType.POINT)
    geo.add_layer("Train", GeometricType.LINE)
    geo.become_spatial("Store.Store", GeometricType.POINT)
    geo.become_spatial("Store.City", GeometricType.POINT)
    text = to_plantuml(geomd_to_uml(geo))
    return geo, text


def test_fig6_geomd_model(benchmark):
    geo, text = benchmark(_apply_schema_rules)
    assert "class Store <<SpatialLevel>>" in text
    assert "class Airport <<Layer>>" in text
    assert "class Train <<Layer>>" in text

    diff = diff_schemas(GeoMDSchema.from_md(build_sales_schema()), geo)
    assert set(diff.added_layers) == {"Airport", "Train"}
    assert set(diff.spatialized_levels) == {"Store.Store", "Store.City"}
    print("\n[FIG6] GeoMD model regenerated; diff from Fig. 2:")
    print("  " + diff.summary().replace("\n", "\n  "))
