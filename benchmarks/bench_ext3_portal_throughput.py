"""EXT3 — portal throughput through the in-process /api/v1 dispatch path.

Infrastructure benchmark (not a paper artefact): with the web layer
rebuilt as a thin route table over the service façade (middleware
pipeline, session store, DTO serialization), this measures what one
process can serve.  Five request mixes:

* EXT3a — ``GET /api/v1/view`` (session auth + stats; with the
  generation-keyed view memo this is the steady-state cache-hit path);
* EXT3b — ``POST /api/v1/query`` (GeoMDQL parse + LRU-cached execute
  over the personalized selection; the realistic analysis hot path);
* EXT3c — full session lifecycle (login with rule firing, one view,
  logout) — what a login storm costs;
* EXT3d — steady-state mix (8 views + 2 queries per round), the
  repeated-view/repeated-query ratio of a dashboard refresh;
* EXT3e — invalidation mix: views/queries with a spatial-selection
  report every round, forcing the memo and query cache to re-materialize.

Set ``BENCH_JSON_OUT=/path/to.json`` to emit the measured req/s series
as a JSON artefact (the perf-trajectory format of
``benchmarks/run_benchmarks.py``).

Run with::

    pytest benchmarks/bench_ext3_portal_throughput.py --benchmark-only -s
"""

import atexit
import json
import os
import time

from repro.web import PortalApp

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"

#: label -> req/s, dumped to $BENCH_JSON_OUT at exit when set.
RESULTS: dict[str, float] = {}


def _emit_json() -> None:
    out = os.environ.get("BENCH_JSON_OUT")
    if out and RESULTS:
        with open(out, "w") as handle:
            json.dump({"series": "EXT3", "req_per_s": RESULTS}, handle, indent=2)


atexit.register(_emit_json)


def _make_portal(engine, profile):
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(profile)
    return app


def _login(app, profile, world):
    location = world.stores[0].location
    response = app.handle(
        "POST",
        "/api/v1/login",
        {"user": profile.user_id, "location": [location.x, location.y]},
    )
    assert response.ok, response.body
    return response.json()["token"]


def _report(label, app, request, rounds=300, requests_per_round=1):
    """Requests/sec through Router.dispatch for the EXPERIMENTS series."""
    started = time.perf_counter()
    for _ in range(rounds):
        request()
    elapsed = time.perf_counter() - started
    rate = rounds * requests_per_round / elapsed
    RESULTS[label] = round(rate, 1)
    print(f"\n[{label}] {rate:,.0f} req/s in-process ({app.registry.names()})")


def test_ext3a_view_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    token = _login(app, profile, world)

    def view():
        response = app.handle("GET", "/api/v1/view", token=token)
        assert response.ok
        return response

    benchmark(view)
    _report("EXT3a view", app, view, rounds=2000)


def test_ext3b_query_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    token = _login(app, profile, world)
    body = {"q": QUERY, "limit": 10}

    def query():
        response = app.handle("POST", "/api/v1/query", body, token=token)
        assert response.ok
        return response

    benchmark(query)
    _report("EXT3b query", app, query, rounds=500)


def test_ext3c_session_lifecycle_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    location = world.stores[0].location
    login_body = {
        "user": profile.user_id,
        "location": [location.x, location.y],
    }

    def lifecycle():
        token = app.handle("POST", "/api/v1/login", login_body).json()["token"]
        assert app.handle("GET", "/api/v1/view", token=token).ok
        assert app.handle("POST", "/api/v1/logout", token=token).ok

    benchmark(lifecycle)
    _report("EXT3c lifecycle", app, lifecycle, rounds=20, requests_per_round=3)


def test_ext3d_steady_state_mix(benchmark, engine, profile, world):
    """The dashboard-refresh ratio: repeated views dominate, a few queries."""
    app = _make_portal(engine, profile)
    token = _login(app, profile, world)
    body = {"q": QUERY, "limit": 10}

    def mix():
        for _ in range(8):
            assert app.handle("GET", "/api/v1/view", token=token).ok
        for _ in range(2):
            assert app.handle("POST", "/api/v1/query", body, token=token).ok

    benchmark(mix)
    _report("EXT3d steady mix", app, mix, rounds=100, requests_per_round=10)


def test_ext3e_invalidation_mix(benchmark, engine, profile, world):
    """Worst case for the cache hierarchy: every round mutates the star
    (a feature insert bumps its generation) and reports a spatial
    selection, so views/queries keep re-materializing instead of hitting
    the memo.  A repeated identical selection alone would NOT invalidate:
    the selection generation only moves when the selection grows."""
    from itertools import count

    from repro.geometry import Point

    app = _make_portal(engine, profile)
    token = _login(app, profile, world)
    body = {"q": QUERY, "limit": 10}
    selection = {
        "target": "GeoMD.Store.City",
        "condition": (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        ),
    }
    feature_ids = count()

    def mix():
        engine.star.add_feature(
            "Airport", f"bench-{next(feature_ids)}", Point(0.0, 0.0)
        )
        assert app.handle(
            "POST", "/api/v1/selection", selection, token=token
        ).ok
        for _ in range(4):
            assert app.handle("GET", "/api/v1/view", token=token).ok
        assert app.handle("POST", "/api/v1/query", body, token=token).ok

    benchmark(mix)
    _report("EXT3e invalidation mix", app, mix, rounds=50, requests_per_round=6)
