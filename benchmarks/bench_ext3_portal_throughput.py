"""EXT3 — portal throughput through the in-process /api/v1 dispatch path.

Infrastructure benchmark (not a paper artefact): with the web layer
rebuilt as a thin route table over the service façade (middleware
pipeline, session store, DTO serialization), this measures what one
process can serve.  Three request mixes:

* EXT3a — ``GET /api/v1/view`` (session auth + stats; the cheapest
  authenticated request, dominated by framework overhead);
* EXT3b — ``POST /api/v1/query`` (GeoMDQL parse + execute over the
  personalized selection; the realistic analysis hot path);
* EXT3c — full session lifecycle (login with rule firing, one view,
  logout) — what a login storm costs.

Run with::

    pytest benchmarks/bench_ext3_portal_throughput.py --benchmark-only -s
"""

import time

from repro.web import PortalApp

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"


def _make_portal(engine, profile):
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(profile)
    return app


def _login(app, profile, world):
    location = world.stores[0].location
    response = app.handle(
        "POST",
        "/api/v1/login",
        {"user": profile.user_id, "location": [location.x, location.y]},
    )
    assert response.ok, response.body
    return response.json()["token"]


def _report(label, app, request, rounds=300):
    """Requests/sec through Router.dispatch for the EXPERIMENTS series."""
    started = time.perf_counter()
    for _ in range(rounds):
        request()
    elapsed = time.perf_counter() - started
    print(f"\n[{label}] {rounds / elapsed:,.0f} req/s in-process ({app.registry.names()})")


def test_ext3a_view_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    token = _login(app, profile, world)

    def view():
        response = app.handle("GET", "/api/v1/view", token=token)
        assert response.ok
        return response

    benchmark(view)
    _report("EXT3a view", app, view)


def test_ext3b_query_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    token = _login(app, profile, world)
    body = {"q": QUERY, "limit": 10}

    def query():
        response = app.handle("POST", "/api/v1/query", body, token=token)
        assert response.ok
        return response

    benchmark(query)
    _report("EXT3b query", app, query, rounds=50)


def test_ext3c_session_lifecycle_throughput(benchmark, engine, profile, world):
    app = _make_portal(engine, profile)
    location = world.stores[0].location
    login_body = {
        "user": profile.user_id,
        "location": [location.x, location.y],
    }

    def lifecycle():
        token = app.handle("POST", "/api/v1/login", login_body).json()["token"]
        assert app.handle("GET", "/api/v1/view", token=token).ok
        assert app.handle("POST", "/api/v1/logout", token=token).ok

    benchmark(lifecycle)
    _report("EXT3c lifecycle", app, lifecycle, rounds=20)
